//! Parse-as-a-service: a long-running front-end around the [`Engine`] API.
//!
//! The engines parse one request at a time and return typed results; this
//! crate is everything *around* that call which a service deployment needs
//! and which the paper's batch-oriented reproduction previously lacked:
//!
//! * a **line protocol** over TCP ([`wire`]): `PARSE [k=v ...] -- <text>`
//!   in, exactly one status line (`OK`/`DEGRADED`/`SHED`/`TIMEOUT`/
//!   `FAULT`/`ERR`) out, with engine errors carried in the stable
//!   [`cdg_core::wire`] encoding;
//! * a **bounded MPMC queue** ([`queue`]) between connection handlers and
//!   a fixed worker pool — the service's only elastic buffer, so memory
//!   stays bounded no matter the offered load;
//! * **admission control** ([`admission`]): each request's
//!   [`cdg_core::ParseBudget`] is converted into an SLO class and a queue
//!   deadline at the door, and watermark-based **load shedding** rejects
//!   work *early* (cheap typed `SHED` responses) instead of letting the
//!   queue melt down;
//! * capped deterministic **retry** of transient faults via
//!   [`parsec_maspar::retry`];
//! * a digest-keyed bounded **response cache** ([`cache`]);
//! * **graceful drain** ([`server`]): stop accepting, flush the queue
//!   under a drain deadline (late jobs get typed `SHED` responses, never
//!   silence), then report final statistics.
//!
//! Everything is std-only — `std::net::TcpListener` plus worker threads —
//! in keeping with the workspace's offline dependency policy.
//!
//! The ground truth for accounting is [`ServeStats`] (lock-free atomics);
//! every event is mirrored into the `obsv` metrics registry under
//! `serve.*` names when metrics are armed, and the chaos suite asserts the
//! two ledgers agree exactly.

pub mod admission;
pub mod cache;
pub mod queue;
pub mod server;
pub mod signal;
pub mod wire;

pub use admission::{decide, Admit, SloClass};
pub use cache::ResponseCache;
pub use queue::Bounded;
pub use server::{Server, ServerHandle};
pub use wire::{parse_request, render_fields, split_response, Request, RequestOpts};

use cdg_core::api::Engine;
use maspar_sim::MachineConfig;
use parsec_maspar::{MasparOptions, RetryPolicy};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Everything the server needs to run, with defaults suitable for the
/// shipped grammars. Tests shrink the queue/watermarks to force shedding
/// and inject `service_delay` to create overload deterministically.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (the handle reports it).
    pub addr: String,
    /// Grammar name (`paper` | `english`) or a `.cdg` file path.
    pub grammar: String,
    /// Default engine for requests that don't override it
    /// (`serial` | `pram` | `maspar`). Requests carrying a fault plan
    /// always run on the maspar engine — it is the only one with a fault
    /// model.
    pub engine: String,
    /// Worker threads servicing the queue.
    pub workers: usize,
    /// Queue capacity; a full queue sheds with `reason=queue_full`.
    pub queue_capacity: usize,
    /// Depth at which Batch-class requests are shed (`reason=soft_watermark`).
    pub soft_watermark: usize,
    /// Depth at which every request is shed (`reason=overload`).
    pub hard_watermark: usize,
    /// Response cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// How long drain waits for queued work before shedding the remainder.
    pub drain_deadline: Duration,
    /// Maximum simultaneous connections; excess connections receive one
    /// `SHED reason=connections` line and are closed.
    pub max_connections: usize,
    /// Artificial per-request service time, for overload tests and the
    /// bench scenario (zero in production).
    pub service_delay: Duration,
    /// Opportunistic mega-batching: a worker that pops a parse job also
    /// takes up to this many *compatible* jobs queued right behind it
    /// (same engine, no budget, no faults) and services them as one
    /// flattened [`cdg_core::BatchStrategy::Mega`] batch. `0` or `1`
    /// disables coalescing. Responses are identical to the per-request
    /// path — coalescing changes throughput, never answers.
    pub coalesce: usize,
    /// Machine shape for the maspar engine (tests shrink it so fault plans
    /// can kill the whole array).
    pub machine: MachineConfig,
    /// Retry policy for transient engine failures.
    pub retry: RetryPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            grammar: "english".into(),
            engine: "serial".into(),
            workers: 4,
            queue_capacity: 64,
            soft_watermark: 48,
            hard_watermark: 60,
            cache_capacity: 256,
            drain_deadline: Duration::from_secs(2),
            max_connections: 64,
            service_delay: Duration::ZERO,
            coalesce: 8,
            machine: MachineConfig::default(),
            retry: RetryPolicy::default(),
        }
    }
}

/// Engine instance for one stable name, with the configured machine shape.
/// Returns `None` for unknown names. Workers construct engines per thread
/// (they are cheap value types), so nothing here needs to be shared.
pub fn engine_for(name: &str, machine: &MachineConfig) -> Option<Box<dyn Engine>> {
    match name {
        "serial" => Some(Box::new(cdg_core::api::Sequential)),
        "pram" => Some(Box::new(cdg_parallel::Pram)),
        "maspar" => Some(Box::new(parsec_maspar::Maspar::with_options(
            MasparOptions {
                machine: machine.clone(),
                ..Default::default()
            },
        ))),
        _ => None,
    }
}

/// Lock-free event ledger — the service's ground truth. The obsv registry
/// mirrors these under `serve.*`; [`ServerHandle::stats`] snapshots them.
#[derive(Debug, Default)]
pub struct ServeStats {
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub ok: AtomicU64,
    pub degraded: AtomicU64,
    pub shed_queue_full: AtomicU64,
    pub shed_overload: AtomicU64,
    pub shed_soft_watermark: AtomicU64,
    pub shed_draining: AtomicU64,
    pub shed_drain_deadline: AtomicU64,
    pub shed_connections: AtomicU64,
    pub timeouts: AtomicU64,
    pub faults: AtomicU64,
    /// Typed engine/lexicon errors on admitted requests.
    pub errors: AtomicU64,
    /// Malformed lines that never became a request (unknown verb, bad
    /// option syntax) — answered with `ERR proto=`, but not counted as
    /// parse requests.
    pub proto_errors: AtomicU64,
    pub retries: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
}

/// A plain-number copy of [`ServeStats`], for assertions and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub connections: u64,
    pub requests: u64,
    pub ok: u64,
    pub degraded: u64,
    pub shed_queue_full: u64,
    pub shed_overload: u64,
    pub shed_soft_watermark: u64,
    pub shed_draining: u64,
    pub shed_drain_deadline: u64,
    pub shed_connections: u64,
    pub timeouts: u64,
    pub faults: u64,
    pub errors: u64,
    pub proto_errors: u64,
    pub retries: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl ServeStats {
    /// Bump a ledger field and its obsv mirror. The `name` doubles as the
    /// metrics-registry key.
    pub fn bump(&self, field: &AtomicU64, name: &'static str) {
        field.fetch_add(1, Ordering::Relaxed);
        obsv::counter_add(name, 1);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            connections: g(&self.connections),
            requests: g(&self.requests),
            ok: g(&self.ok),
            degraded: g(&self.degraded),
            shed_queue_full: g(&self.shed_queue_full),
            shed_overload: g(&self.shed_overload),
            shed_soft_watermark: g(&self.shed_soft_watermark),
            shed_draining: g(&self.shed_draining),
            shed_drain_deadline: g(&self.shed_drain_deadline),
            shed_connections: g(&self.shed_connections),
            timeouts: g(&self.timeouts),
            faults: g(&self.faults),
            errors: g(&self.errors),
            proto_errors: g(&self.proto_errors),
            retries: g(&self.retries),
            cache_hits: g(&self.cache_hits),
            cache_misses: g(&self.cache_misses),
        }
    }
}

impl StatsSnapshot {
    /// Every shed, regardless of reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full
            + self.shed_overload
            + self.shed_soft_watermark
            + self.shed_draining
            + self.shed_drain_deadline
            + self.shed_connections
    }

    /// Typed responses owed to admitted-or-rejected *parse* requests:
    /// every well-formed `PARSE` line must land in exactly one of these
    /// buckets, so this always equals [`Self::requests`]. Connection-level
    /// sheds and protocol errors are accounted separately — those lines
    /// never became parse requests.
    pub fn parse_responses(&self) -> u64 {
        self.ok + self.degraded + self.shed_total() - self.shed_connections
            + self.timeouts
            + self.faults
            + self.errors
            + self.cache_hits
    }

    /// The final `serve:` summary line printed at drain.
    pub fn render_final(&self) -> String {
        format!(
            "serve: {} request(s) on {} connection(s) — {} ok, {} degraded, {} shed \
             (full={} overload={} soft={} draining={} drain_deadline={} conns={}), \
             {} timeout(s), {} fault(s), {} error(s), {} proto error(s), \
             {} retry(ies), cache {}/{}",
            self.requests,
            self.connections,
            self.ok,
            self.degraded,
            self.shed_total(),
            self.shed_queue_full,
            self.shed_overload,
            self.shed_soft_watermark,
            self.shed_draining,
            self.shed_drain_deadline,
            self.shed_connections,
            self.timeouts,
            self.faults,
            self.errors,
            self.proto_errors,
            self.retries,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_factory_matches_the_cli_names() {
        let machine = MachineConfig::default();
        for name in ["serial", "pram", "maspar"] {
            assert_eq!(engine_for(name, &machine).unwrap().name(), name);
        }
        assert!(engine_for("abacus", &machine).is_none());
    }

    #[test]
    fn stats_ledger_counts_and_totals() {
        let stats = ServeStats::default();
        stats.bump(&stats.requests, "serve.requests");
        stats.bump(&stats.ok, "serve.ok");
        stats.bump(&stats.shed_overload, "serve.shed.overload");
        stats.bump(&stats.timeouts, "serve.timeout");
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.shed_total(), 1);
        assert_eq!(snap.parse_responses(), 3);
        assert!(snap.render_final().contains("1 request(s)"));
    }
}
