//! The serve line protocol: requests in, exactly one status line out.
//!
//! Requests (one per line, `\n`-terminated):
//!
//! ```text
//! PING
//! STATS
//! SHUTDOWN
//! PARSE [key=value ...] -- <sentence text>
//! ```
//!
//! `PARSE` options (all optional): `budget=<spec>` (the CLI's
//! [`ParseBudget::parse_spec`] syntax, e.g. `budget=ms=50,iters=3`),
//! `class=interactive|standard|batch` (overrides the budget-derived SLO
//! class), `faults=<spec>` ([`FaultPlan::parse_spec`] — forces the maspar
//! engine), `transient=<K>` (the fault plan clears after K attempts, so
//! retries can succeed), `parses=<N>`, `engine=serial|pram|maspar`.
//!
//! Responses are `<STATUS> key=value ...` — the same shape as
//! [`cdg_core::wire`] error lines, parsed by the same
//! [`cdg_core::wire::split_fields`]:
//!
//! | status     | meaning                                                |
//! |------------|--------------------------------------------------------|
//! | `OK`       | parsed within budget                                   |
//! | `DEGRADED` | budget cut the parse short; partial result, `cause=`   |
//! | `SHED`     | rejected by admission control, `reason=`               |
//! | `TIMEOUT`  | queue deadline expired before a worker got to it       |
//! | `FAULT`    | transient fault survived every retry, `cause=`         |
//! | `ERR`      | typed non-transient error (`cause=`) or protocol error (`proto=`) |
//! | `PONG` / `STATS` / `DRAINING` | verb acknowledgements               |
//!
//! `cause=` values are a percent-escaped [`cdg_core::wire::encode`] line;
//! [`decode_cause`] recovers the typed [`EngineError`]. One request, one
//! response, in order — the connection handler owns that invariant.

use crate::admission::SloClass;
use cdg_core::wire::{escape, split_fields, unescape};
use cdg_core::{EngineError, ParseBudget};
use maspar_sim::FaultPlan;

/// Instruction-count horizon handed to `faults=` specs that schedule
/// transients (mirrors the CLI's constant).
pub const FAULT_HORIZON_OPS: u64 = 2_000;

/// Parsed `PARSE` options.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOpts {
    /// The raw budget spec, kept verbatim for the cache digest.
    pub budget_spec: String,
    pub budget: ParseBudget,
    /// Explicit SLO class override (`class=`); otherwise derived from the
    /// budget at admission.
    pub class: Option<SloClass>,
    pub faults: Option<FaultPlan>,
    /// Fault plan clears after this many attempts (`transient=`).
    pub transient: Option<usize>,
    pub max_parses: usize,
    /// Per-request engine override (`engine=`).
    pub engine: Option<String>,
}

impl Default for RequestOpts {
    fn default() -> Self {
        RequestOpts {
            budget_spec: String::new(),
            budget: ParseBudget::UNLIMITED,
            class: None,
            faults: None,
            transient: None,
            max_parses: 4,
            engine: None,
        }
    }
}

/// One protocol verb.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Ping,
    Stats,
    Shutdown,
    Parse { text: String, opts: RequestOpts },
}

/// Parse one request line. `phys_pes` bounds fault-plan PE ids (the
/// configured machine's array size).
pub fn parse_request(line: &str, phys_pes: usize) -> Result<Request, String> {
    let line = line.trim();
    match line {
        "PING" => return Ok(Request::Ping),
        "STATS" => return Ok(Request::Stats),
        "SHUTDOWN" => return Ok(Request::Shutdown),
        _ => {}
    }
    let Some(rest) = line.strip_prefix("PARSE") else {
        let verb = line.split_ascii_whitespace().next().unwrap_or("");
        return Err(format!("unknown verb `{verb}`"));
    };
    let rest = rest.trim_start();
    let (opt_part, text) = match rest.split_once("--") {
        Some((opts, text)) => (opts.trim(), text.trim()),
        // No separator: the whole remainder is the sentence.
        None => ("", rest),
    };
    // Empty sentence text is NOT a protocol error: it parses as a Parse
    // request so the worker's lexicon answers with the typed
    // `ERR cause=` EmptySentence encoding — the same vocabulary the CLI's
    // empty `--batch` uses, instead of an untyped `proto=` line.
    let mut opts = RequestOpts::default();
    for part in opt_part.split_ascii_whitespace() {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("option `{part}` is not key=value"))?;
        match key {
            "budget" => {
                opts.budget = ParseBudget::parse_spec(value)?;
                opts.budget_spec = value.to_string();
            }
            "class" => opts.class = Some(SloClass::parse(value)?),
            "faults" => {
                opts.faults = Some(FaultPlan::parse_spec(value, phys_pes, FAULT_HORIZON_OPS)?)
            }
            "transient" => {
                opts.transient = Some(
                    value
                        .parse()
                        .map_err(|_| format!("transient=`{value}` is not a count"))?,
                )
            }
            "parses" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("parses=`{value}` is not a count"))?;
                if n == 0 {
                    return Err("parses=0 would report every sentence rejected".into());
                }
                opts.max_parses = n;
            }
            "engine" => opts.engine = Some(value.to_string()),
            other => return Err(format!("unknown PARSE option `{other}`")),
        }
    }
    Ok(Request::Parse {
        text: text.to_string(),
        opts,
    })
}

/// Render a response line: `<STATUS> key=value ...`. Values are escaped.
pub fn render_fields(status: &str, fields: &[(&str, String)]) -> String {
    let mut out = String::from(status);
    for (key, value) in fields {
        out.push(' ');
        out.push_str(key);
        out.push('=');
        out.push_str(&escape(value));
    }
    out
}

/// Split a response line into status and unescaped `key=value` fields.
pub fn split_response(line: &str) -> Result<(String, Vec<(String, String)>), String> {
    let (status, raw) = split_fields(line.trim())?;
    let mut fields = Vec::with_capacity(raw.len());
    for (k, v) in raw {
        fields.push((k.to_string(), unescape(v)?));
    }
    Ok((status.to_string(), fields))
}

/// The `cause=` field for a typed engine error.
pub fn cause_field(err: &EngineError) -> (&'static str, String) {
    ("cause", cdg_core::wire::encode(err))
}

/// Recover the typed error from an unescaped `cause=` value.
pub fn decode_cause(value: &str) -> Result<EngineError, String> {
    cdg_core::wire::decode(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdg_core::error::BudgetResource;
    use std::time::Duration;

    #[test]
    fn verbs_parse() {
        assert_eq!(parse_request("PING", 16).unwrap(), Request::Ping);
        assert_eq!(parse_request(" STATS \n", 16).unwrap(), Request::Stats);
        assert_eq!(parse_request("SHUTDOWN", 16).unwrap(), Request::Shutdown);
        assert!(parse_request("EHLO example.com", 16).is_err());
        assert!(parse_request("", 16).is_err());
    }

    #[test]
    fn bare_parse_line() {
        match parse_request("PARSE the dog runs", 16).unwrap() {
            Request::Parse { text, opts } => {
                assert_eq!(text, "the dog runs");
                assert_eq!(opts, RequestOpts::default());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_option_set_parses() {
        let line =
            "PARSE budget=ms=50,iters=3 class=batch faults=7 transient=1 parses=2 engine=maspar \
             -- the program runs";
        match parse_request(line, 16).unwrap() {
            Request::Parse { text, opts } => {
                assert_eq!(text, "the program runs");
                assert_eq!(opts.budget.max_wall_time, Some(Duration::from_millis(50)));
                assert_eq!(opts.budget.max_filter_iterations, Some(3));
                assert_eq!(opts.budget_spec, "ms=50,iters=3");
                assert_eq!(opts.class, Some(SloClass::Batch));
                assert!(opts.faults.is_some());
                assert_eq!(opts.transient, Some(1));
                assert_eq!(opts.max_parses, 2);
                assert_eq!(opts.engine.as_deref(), Some("maspar"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_sentence_text_is_a_parse_request_not_a_proto_error() {
        // The worker turns it into the typed EmptySentence lexicon error;
        // rejecting it here would leave "no input" without a `cause=`.
        for line in ["PARSE --", "PARSE", "PARSE parses=2 --"] {
            match parse_request(line, 16).unwrap() {
                Request::Parse { text, .. } => assert!(text.is_empty(), "line: {line}"),
                other => panic!("{line}: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_parse_lines_are_typed_errors() {
        assert!(
            parse_request("PARSE budget -- x", 16).is_err(),
            "bare option"
        );
        assert!(parse_request("PARSE budget=ms=oops -- x", 16).is_err());
        assert!(parse_request("PARSE class=gold -- x", 16).is_err());
        assert!(parse_request("PARSE parses=0 -- x", 16).is_err());
        assert!(parse_request("PARSE hats=3 -- x", 16).is_err());
        // Fault PE ids are checked against the configured machine.
        assert!(parse_request("PARSE faults=dead=99 -- x", 16).is_err());
    }

    #[test]
    fn response_lines_round_trip() {
        let line = render_fields(
            "OK",
            &[
                ("accepted", "true".into()),
                ("parses", "2".into()),
                ("note", "has spaces = and %".into()),
            ],
        );
        assert!(!line.contains('\n'));
        let (status, fields) = split_response(&line).unwrap();
        assert_eq!(status, "OK");
        assert_eq!(fields[0], ("accepted".into(), "true".into()));
        assert_eq!(fields[2], ("note".into(), "has spaces = and %".into()));
    }

    #[test]
    fn cause_field_round_trips_typed_errors() {
        let err = ParseBudget::exceeded(BudgetResource::WallTime, "50ms", "63ms");
        let (key, value) = cause_field(&err);
        let line = render_fields("FAULT", &[(key, value)]);
        let (_, fields) = split_response(&line).unwrap();
        let (k, v) = &fields[0];
        assert_eq!(k, "cause");
        assert_eq!(decode_cause(v).unwrap(), err);
    }
}
