//! Digest-keyed bounded response cache.
//!
//! Parsing is deterministic per engine (the repo's determinism suite
//! guarantees it), so a response is fully determined by the request
//! digest: engine, sentence text, budget, and parse cap. The cache stores
//! the *rendered response core* (status + result fields, minus the
//! per-delivery `cached=`/`retries=`/`wall_us=` fields, which the server
//! re-appends) — no grammar-borrowing state, so it is trivially shareable.
//!
//! Fault-injected requests are never cached: their responses depend on
//! the fault plan's interaction with retry timing, and serving a stale
//! fault to a healthy machine (or vice versa) would be a lie.
//!
//! Eviction is FIFO by insertion. For a parse service the win is repeated
//! identical sentences (health checks, hot queries), where FIFO ≈ LRU at
//! a fraction of the bookkeeping; capacity bounds memory, which is the
//! robustness requirement.

use std::collections::{HashMap, VecDeque};

/// FNV-1a digest of a request's identity. Field order is fixed; `\0`
/// separators keep `("ab","c")` distinct from `("a","bc")`.
pub fn request_digest(engine: &str, text: &str, budget_spec: &str, max_parses: usize) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash ^= 0;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    };
    eat(engine.as_bytes());
    eat(text.as_bytes());
    eat(budget_spec.as_bytes());
    eat(&max_parses.to_le_bytes());
    hash
}

/// Bounded FIFO map from request digest to rendered response core.
pub struct ResponseCache {
    capacity: usize,
    map: HashMap<u64, String>,
    order: VecDeque<u64>,
}

impl ResponseCache {
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn get(&self, digest: u64) -> Option<&str> {
        self.map.get(&digest).map(String::as_str)
    }

    /// Insert, evicting the oldest entry at capacity. A capacity-0 cache
    /// stores nothing (caching disabled).
    pub fn insert(&mut self, digest: u64, response_core: String) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(digest, response_core).is_none() {
            self.order.push_back(digest);
            if self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_separate_every_identity_field() {
        let base = request_digest("serial", "the dog runs", "", 4);
        assert_eq!(request_digest("serial", "the dog runs", "", 4), base);
        assert_ne!(request_digest("maspar", "the dog runs", "", 4), base);
        assert_ne!(request_digest("serial", "the cat runs", "", 4), base);
        assert_ne!(request_digest("serial", "the dog runs", "ms=50", 4), base);
        assert_ne!(request_digest("serial", "the dog runs", "", 5), base);
        // Concatenation boundaries matter.
        assert_ne!(
            request_digest("serial", "ab", "c", 4),
            request_digest("serial", "a", "bc", 4)
        );
    }

    #[test]
    fn cache_hits_and_misses() {
        let mut cache = ResponseCache::new(4);
        let d = request_digest("serial", "x", "", 4);
        assert!(cache.get(d).is_none());
        cache.insert(d, "OK accepted=true".into());
        assert_eq!(cache.get(d), Some("OK accepted=true"));
    }

    #[test]
    fn capacity_bounds_memory_fifo_eviction() {
        let mut cache = ResponseCache::new(2);
        cache.insert(1, "a".into());
        cache.insert(2, "b".into());
        cache.insert(3, "c".into());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_none(), "oldest entry evicted");
        assert_eq!(cache.get(2), Some("b"));
        assert_eq!(cache.get(3), Some("c"));
        // Re-inserting an existing digest doesn't duplicate the order slot.
        cache.insert(3, "c2".into());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(3), Some("c2"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResponseCache::new(0);
        cache.insert(7, "never".into());
        assert!(cache.is_empty());
        assert!(cache.get(7).is_none());
    }
}
