//! Minimal SIGTERM/SIGINT-to-flag plumbing, dependency-free.
//!
//! The CLI's serve loop needs one bit: "an operator asked us to stop".
//! With no `signal-hook`/`ctrlc` crate available offline, we register a
//! handler through libc's `signal(2)` via a direct FFI declaration. The
//! handler only stores into a static [`AtomicBool`] — the one operation
//! that is unambiguously async-signal-safe — and the serve loop polls the
//! flag between accept attempts to begin a graceful drain.
//!
//! Non-unix builds compile to an always-false flag (the `SHUTDOWN` verb
//! and [`crate::ServerHandle::begin_drain`] still work everywhere).

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been observed since [`install`].
pub fn termination_requested() -> bool {
    TERMINATE.load(Ordering::SeqCst)
}

/// Testing/CLI hook: behave as if a signal arrived.
pub fn request_termination() {
    TERMINATE.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::TERMINATE;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX signal(2). The return value (previous handler) is unused.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    /// Route SIGTERM and SIGINT to the termination flag.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal plumbing off unix; drain still works via the protocol.
    pub fn install() {}
}

pub use imp::install;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_latches() {
        install();
        // `request_termination` is the portable stand-in for a delivered
        // signal; actually raising one would race other tests.
        request_termination();
        assert!(termination_requested());
    }
}
