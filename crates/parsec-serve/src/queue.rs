//! The bounded MPMC queue between connection handlers and the worker pool.
//!
//! `Mutex<VecDeque> + Condvar` — deliberately boring. The queue is the
//! service's *only* elastic buffer, and its invariants carry the
//! robustness story:
//!
//! * [`Bounded::try_push`] never blocks and never grows past capacity:
//!   producers get an immediate `Full`/`Closed` verdict, which the
//!   admission layer converts into a typed `SHED` response. Backpressure
//!   is explicit, not an unbounded channel quietly eating memory.
//! * [`Bounded::pop`] blocks until an item arrives or the queue is closed
//!   *and* empty — close-then-drain, so nothing admitted is ever dropped
//!   by the queue itself.
//! * [`Bounded::drain_now`] empties the queue in one lock acquisition;
//!   the drain supervisor uses it to shed leftovers when the drain
//!   deadline expires (each leftover still gets its typed response — the
//!   queue never swallows work silently).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Bounded::try_push`] refused an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// At capacity: the caller should shed with backpressure semantics.
    Full,
    /// Closed: the service is past drain; nothing new may enter.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking bounded MPMC queue. See the module docs for the contract.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    available: Condvar,
}

impl<T> Bounded<T> {
    pub fn new(capacity: usize) -> Self {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            capacity: capacity.max(1),
            available: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; used for watermarks and gauges).
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Non-blocking push. On success returns the depth *after* the push
    /// (for the peak-depth gauge); on failure returns the item back along
    /// with why.
    pub fn try_push(&self, item: T) -> Result<usize, (T, PushError)> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err((item, PushError::Closed));
        }
        if st.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        st.items.push_back(item);
        let depth = st.items.len();
        drop(st);
        self.available.notify_one();
        Ok(depth)
    }

    /// Block until an item is available (FIFO) or the queue is closed and
    /// empty (`None` — the worker's signal to exit).
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.available.wait(st).unwrap();
        }
    }

    /// Like [`Self::pop`], but after blocking for the first item it also
    /// takes — without blocking — up to `max - 1` items queued directly
    /// behind it for which `coalesce(&first, &next)` holds, stopping at
    /// the first incompatible item so FIFO order is preserved. The worker
    /// pool uses this to fuse bursts of compatible parse requests into
    /// one mega-batch; `None` still means closed-and-empty.
    pub fn pop_group(&self, max: usize, coalesce: impl Fn(&T, &T) -> bool) -> Option<Vec<T>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(first) = st.items.pop_front() {
                let mut group = vec![first];
                while group.len() < max.max(1) {
                    match st.items.front() {
                        Some(next) if coalesce(&group[0], next) => {
                            let next = st.items.pop_front().expect("front exists");
                            group.push(next);
                        }
                        _ => break,
                    }
                }
                return Some(group);
            }
            if st.closed {
                return None;
            }
            st = self.available.wait(st).unwrap();
        }
    }

    /// Take everything queued right now, in FIFO order.
    pub fn drain_now(&self) -> Vec<T> {
        let mut st = self.state.lock().unwrap();
        st.items.drain(..).collect()
    }

    /// Close the queue: pushes fail with [`PushError::Closed`], poppers
    /// drain the remainder then observe `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_fifo_within_capacity() {
        let q = Bounded::new(3);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_not_blocks() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, why) = q.try_push(3).unwrap_err();
        assert_eq!((item, why), (3, PushError::Full));
        assert_eq!(q.depth(), 2, "rejected item never entered");
    }

    #[test]
    fn close_drains_then_terminates_poppers() {
        let q = Arc::new(Bounded::new(4));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert_eq!(q.try_push(12).unwrap_err().1, PushError::Closed);
        // Already-queued items still come out, then poppers see None.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
        // A popper blocked on an empty closed queue terminates too.
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || q2.pop());
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn pop_group_fuses_compatible_runs_and_stops_at_the_first_mismatch() {
        let q = Bounded::new(8);
        for v in [2, 4, 6, 7, 8] {
            q.try_push(v).unwrap();
        }
        // Evens coalesce with evens; 7 breaks the run and stays queued.
        let even = |a: &i32, b: &i32| a % 2 == 0 && b % 2 == 0;
        assert_eq!(q.pop_group(10, even), Some(vec![2, 4, 6]));
        assert_eq!(q.pop_group(10, even), Some(vec![7]));
        // The cap bounds the group even when everything matches.
        assert_eq!(q.pop_group(1, even), Some(vec![8]));
        q.close();
        assert_eq!(q.pop_group(10, even), None);
    }

    #[test]
    fn drain_now_empties_in_order() {
        let q = Bounded::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.drain_now(), vec![0, 1, 2, 3, 4]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(Bounded::new(16));
        let total = 200;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = 0u64;
                    while let Some(_item) = q.pop() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut sent = 0u64;
                    for i in 0..total {
                        // Spin on Full — producers in this test want
                        // every item through, not shedding semantics.
                        let mut item = p * 1000 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(_) => break,
                                Err((back, PushError::Full)) => {
                                    item = back;
                                    thread::yield_now();
                                }
                                Err((_, PushError::Closed)) => return sent,
                            }
                        }
                        sent += 1;
                    }
                    sent
                })
            })
            .collect();
        let sent: u64 = producers.into_iter().map(|t| t.join().unwrap()).sum();
        q.close();
        let got: u64 = consumers.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(sent, 4 * total);
        assert_eq!(got, sent, "every pushed item was popped exactly once");
    }
}
