//! Admission control: budgets become SLO classes, classes become queue
//! deadlines, and watermarks become early typed rejections.
//!
//! The paper's engines already accept a per-parse [`ParseBudget`]; the
//! service reuses it as the *declared urgency* of a request. A tight wall
//! budget says "this caller is interactive — answer fast or not at all";
//! no budget says "batch — take your time, shed me first". That mapping
//! ([`SloClass::from_budget`]) plus two queue-depth watermarks is the
//! whole admission policy:
//!
//! * depth ≥ hard watermark → shed everything (`reason=overload`);
//! * depth ≥ soft watermark → shed Batch only (`reason=soft_watermark`),
//!   preserving headroom for urgent traffic;
//! * queue full → shed (`reason=queue_full`) — the backpressure of last
//!   resort, distinct from the watermarks so operators can tell "policy
//!   shed early" from "buffer actually filled";
//! * draining → shed everything new (`reason=draining`).
//!
//! Admitted requests carry a deadline =
//! enqueue time + [`SloClass::queue_allowance`]; a worker that dequeues an
//! expired request answers `TIMEOUT` without parsing — burning worker time
//! on an answer the interactive caller has already abandoned would only
//! deepen the overload.

use cdg_core::ParseBudget;
use std::time::Duration;

/// Service classes, ordered by urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloClass {
    /// Tight wall budget (≤ 50 ms): shed last, expire fastest.
    Interactive,
    /// Some budget declared: default service.
    Standard,
    /// No budget at all: shed first, generous queue allowance.
    Batch,
}

impl SloClass {
    /// Derive the class from the request's declared budget.
    pub fn from_budget(budget: &ParseBudget) -> Self {
        match budget.max_wall_time {
            Some(wall) if wall <= Duration::from_millis(50) => SloClass::Interactive,
            Some(_) => SloClass::Standard,
            None if !budget.is_unlimited() => SloClass::Standard,
            None => SloClass::Batch,
        }
    }

    /// How long a request of this class may wait in the queue before a
    /// worker treats it as expired.
    pub fn queue_allowance(self) -> Duration {
        match self {
            SloClass::Interactive => Duration::from_millis(50),
            SloClass::Standard => Duration::from_millis(500),
            SloClass::Batch => Duration::from_secs(5),
        }
    }

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }

    /// Parse the wire name (`class=` request option).
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "interactive" => Ok(SloClass::Interactive),
            "standard" => Ok(SloClass::Standard),
            "batch" => Ok(SloClass::Batch),
            other => Err(format!("unknown SLO class `{other}`")),
        }
    }
}

/// The admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Enqueue it.
    Accept,
    /// Reject with this stable `reason=` token.
    Shed(&'static str),
}

/// The watermark policy. `depth` is the queue depth observed at the door;
/// the `queue_full` reason is produced later by the failed push itself,
/// not here, so the policy stays race-free against concurrent admits.
pub fn decide(depth: usize, soft: usize, hard: usize, draining: bool, class: SloClass) -> Admit {
    if draining {
        return Admit::Shed("draining");
    }
    if depth >= hard {
        return Admit::Shed("overload");
    }
    if depth >= soft && class == SloClass::Batch {
        return Admit::Shed("soft_watermark");
    }
    Admit::Accept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(spec: &str) -> ParseBudget {
        ParseBudget::parse_spec(spec).unwrap()
    }

    #[test]
    fn budgets_map_to_classes() {
        assert_eq!(
            SloClass::from_budget(&budget("ms=10")),
            SloClass::Interactive
        );
        assert_eq!(
            SloClass::from_budget(&budget("ms=50")),
            SloClass::Interactive
        );
        assert_eq!(SloClass::from_budget(&budget("ms=200")), SloClass::Standard);
        assert_eq!(
            SloClass::from_budget(&budget("iters=3")),
            SloClass::Standard,
            "non-wall budgets still declare urgency"
        );
        assert_eq!(
            SloClass::from_budget(&ParseBudget::UNLIMITED),
            SloClass::Batch
        );
    }

    #[test]
    fn class_names_round_trip() {
        for class in [SloClass::Interactive, SloClass::Standard, SloClass::Batch] {
            assert_eq!(SloClass::parse(class.name()).unwrap(), class);
        }
        assert!(SloClass::parse("gold-tier").is_err());
    }

    #[test]
    fn allowances_are_ordered_by_urgency() {
        assert!(SloClass::Interactive.queue_allowance() < SloClass::Standard.queue_allowance());
        assert!(SloClass::Standard.queue_allowance() < SloClass::Batch.queue_allowance());
    }

    #[test]
    fn watermarks_shed_in_order() {
        // Below soft: everyone admitted.
        for class in [SloClass::Interactive, SloClass::Standard, SloClass::Batch] {
            assert_eq!(decide(10, 48, 60, false, class), Admit::Accept);
        }
        // At soft: only batch shed.
        assert_eq!(
            decide(48, 48, 60, false, SloClass::Batch),
            Admit::Shed("soft_watermark")
        );
        assert_eq!(
            decide(48, 48, 60, false, SloClass::Interactive),
            Admit::Accept
        );
        // At hard: everyone shed.
        assert_eq!(
            decide(60, 48, 60, false, SloClass::Interactive),
            Admit::Shed("overload")
        );
        // Draining wins over everything.
        assert_eq!(
            decide(0, 48, 60, true, SloClass::Interactive),
            Admit::Shed("draining")
        );
    }
}
