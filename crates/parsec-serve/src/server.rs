//! The server proper: accept loop, connection handlers, worker pool, and
//! the drain state machine.
//!
//! ```text
//!            ┌────────────┐   bounded    ┌─────────────┐
//! TCP ──────▶│ connection │──try_push───▶│ worker pool │──▶ Engine
//!  accept    │  handlers  │◀──reply──────│ (N threads) │    (+ retry)
//!            └────────────┘   channel    └─────────────┘
//!                  │                            │
//!             admission +                  deadline check,
//!             cache lookup                 cache fill
//! ```
//!
//! **Exactly one response per request** is owned by the connection
//! handler: every `PARSE` line either produces an immediate typed
//! rejection (cache hit, admission shed, queue full) or hands the job —
//! with a single-use reply channel — to exactly one of: a worker (parse,
//! timeout, fault, error) or the drain supervisor (drain-deadline shed).
//! Nothing else writes to the connection.
//!
//! **Lifecycle**: `Running → Draining → Stopped`. Draining (via the
//! `SHUTDOWN` verb, [`ServerHandle::begin_drain`], or the CLI's signal
//! flag) stops the accept loop, sheds new requests with
//! `reason=draining`, and lets the supervisor flush the queue: workers
//! finish what they hold, queued jobs run until the drain deadline, and
//! anything still queued at the deadline is shed — typed responses all
//! the way down, never a silently dropped request.

use crate::admission::{decide, Admit, SloClass};
use crate::cache::{request_digest, ResponseCache};
use crate::queue::{Bounded, PushError};
use crate::wire::{self, cause_field, render_fields, Request, RequestOpts};
use crate::{engine_for, ServeConfig, ServeStats, StatsSnapshot};
use cdg_core::api::ParseRequest;
use cdg_core::parser::ParseOptions;
use cdg_core::EngineError;
use cdg_grammar::grammars::{english, paper};
use cdg_grammar::{Grammar, Lexicon};
use parsec_maspar::parse_with_retry;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// One admitted parse job, owned by whoever answers it.
struct Job {
    text: String,
    opts: RequestOpts,
    class: SloClass,
    engine_name: String,
    enqueued: Instant,
    deadline: Instant,
    /// Cache slot to fill on success (`None` = uncacheable).
    digest: Option<u64>,
    /// Single-use reply channel back to the connection handler.
    reply: mpsc::SyncSender<String>,
}

struct Shared {
    config: ServeConfig,
    grammar: Grammar,
    lexicon: Lexicon,
    queue: Bounded<Job>,
    cache: Mutex<ResponseCache>,
    stats: ServeStats,
    state: AtomicU8,
    inflight: AtomicUsize,
    conns: AtomicUsize,
}

impl Shared {
    fn draining(&self) -> bool {
        self.state.load(Ordering::SeqCst) != RUNNING
    }
}

/// Constructor namespace: [`Server::start`] is the entry point.
pub struct Server;

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::shutdown`] (drain + join) or [`ServerHandle::join`]
/// after an external `SHUTDOWN`/signal triggers the drain.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

fn load_grammar(config: &ServeConfig) -> Result<(Grammar, Lexicon), String> {
    match config.grammar.as_str() {
        "paper" => {
            let g = paper::grammar();
            let lex = paper::lexicon(&g);
            Ok((g, lex))
        }
        "english" => {
            let g = english::grammar();
            let lex = english::lexicon(&g);
            Ok((g, lex))
        }
        path if path.ends_with(".cdg") => {
            let (g, lex) = cdg_grammar::file::load_path(std::path::Path::new(path))
                .map_err(|e| e.to_string())?;
            if lex.is_empty() {
                return Err(format!("grammar file `{path}` has no lexicon"));
            }
            Ok((g, lex))
        }
        other => Err(format!(
            "unknown grammar `{other}` (expected paper, english, or a .cdg path)"
        )),
    }
}

impl Server {
    /// Bind, spawn the worker pool and accept loop, and return the handle.
    pub fn start(config: ServeConfig) -> Result<ServerHandle, String> {
        let (grammar, lexicon) = load_grammar(&config)?;
        if engine_for(&config.engine, &config.machine).is_none() {
            return Err(format!("unknown engine `{}`", config.engine));
        }
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind `{}`: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let shared = Arc::new(Shared {
            queue: Bounded::new(config.queue_capacity),
            cache: Mutex::new(ResponseCache::new(config.cache_capacity)),
            stats: ServeStats::default(),
            state: AtomicU8::new(RUNNING),
            inflight: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
            grammar,
            lexicon,
            config,
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&shared, listener))
        };
        Ok(ServerHandle {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ground-truth counters, snapshotted now.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Current queue depth (for tests and the STATS verb).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Enter the drain state: stop accepting, shed new work, flush the
    /// queue under the drain deadline. Idempotent.
    pub fn begin_drain(&self) {
        let _ = self.shared.state.compare_exchange(
            RUNNING,
            DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Whether drain has started (or finished).
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Wait for the drain to complete and every worker to exit, then
    /// return the final counters. Blocks until something triggers the
    /// drain (`SHUTDOWN`, [`Self::begin_drain`], a signal via the CLI).
    pub fn join(mut self) -> StatsSnapshot {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.stats.snapshot()
    }

    /// [`Self::begin_drain`] then [`Self::join`].
    pub fn shutdown(self) -> StatsSnapshot {
        self.begin_drain();
        self.join()
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    // Nonblocking so the loop can poll the drain flag between arrivals.
    let _ = listener.set_nonblocking(true);
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // One-line request/response traffic: Nagle + delayed ACK
                // would add ~40ms to every round trip.
                let _ = stream.set_nodelay(true);
                let stats = &shared.stats;
                if shared.conns.fetch_add(1, Ordering::SeqCst) >= shared.config.max_connections {
                    shared.conns.fetch_sub(1, Ordering::SeqCst);
                    stats.bump(&stats.shed_connections, "serve.shed.connections");
                    let mut stream = stream;
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.write_all(b"SHED reason=connections\n");
                    continue;
                }
                stats.bump(&stats.connections, "serve.connections");
                let shared = Arc::clone(shared);
                thread::spawn(move || {
                    handle_connection(&shared, stream);
                    shared.conns.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
    // Past this point no new connection is accepted; flush the queue.
    drop(listener);
    supervise_drain(shared);
}

/// The drain state machine's second half: wait for queue + in-flight to
/// empty, shed whatever is still queued at the deadline, then close the
/// queue so workers exit.
fn supervise_drain(shared: &Arc<Shared>) {
    let deadline = Instant::now() + shared.config.drain_deadline;
    loop {
        if shared.queue.depth() == 0 && shared.inflight.load(Ordering::SeqCst) == 0 {
            break;
        }
        if Instant::now() >= deadline {
            let stats = &shared.stats;
            for job in shared.queue.drain_now() {
                stats.bump(&stats.shed_drain_deadline, "serve.shed.drain_deadline");
                let _ = job.reply.send(shed_line("drain_deadline", job.class));
            }
            // In-flight work is never abandoned: wait it out.
            while shared.inflight.load(Ordering::SeqCst) > 0 {
                thread::sleep(Duration::from_millis(1));
            }
            break;
        }
        thread::sleep(Duration::from_millis(1));
    }
    shared.queue.close();
    shared.state.store(STOPPED, Ordering::SeqCst);
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // Idle connections self-expire rather than pinning a thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(shared, &line);
        if writer.write_all(response.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            break;
        }
    }
}

fn handle_line(shared: &Arc<Shared>, line: &str) -> String {
    let stats = &shared.stats;
    match wire::parse_request(line, shared.config.machine.phys_pes) {
        Ok(Request::Ping) => "PONG".into(),
        Ok(Request::Stats) => stats_line(shared),
        Ok(Request::Shutdown) => {
            let _ = shared.state.compare_exchange(
                RUNNING,
                DRAINING,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            "DRAINING".into()
        }
        Ok(Request::Parse { text, opts }) => handle_parse(shared, text, opts),
        Err(detail) => {
            stats.bump(&stats.proto_errors, "serve.proto_errors");
            render_fields("ERR", &[("proto", detail)])
        }
    }
}

fn stats_line(shared: &Arc<Shared>) -> String {
    let s = shared.stats.snapshot();
    let n = |v: u64| v.to_string();
    render_fields(
        "STATS",
        &[
            ("requests", n(s.requests)),
            ("ok", n(s.ok)),
            ("degraded", n(s.degraded)),
            ("shed", n(s.shed_total())),
            ("timeouts", n(s.timeouts)),
            ("faults", n(s.faults)),
            ("errors", n(s.errors)),
            ("proto_errors", n(s.proto_errors)),
            ("retries", n(s.retries)),
            ("cache_hits", n(s.cache_hits)),
            ("cache_misses", n(s.cache_misses)),
            ("depth", shared.queue.depth().to_string()),
            (
                "inflight",
                shared.inflight.load(Ordering::SeqCst).to_string(),
            ),
            ("draining", shared.draining().to_string()),
        ],
    )
}

fn shed_line(reason: &str, class: SloClass) -> String {
    render_fields(
        "SHED",
        &[
            ("reason", reason.to_string()),
            ("class", class.name().to_string()),
        ],
    )
}

fn bump_shed(stats: &ServeStats, reason: &'static str) {
    match reason {
        "queue_full" => stats.bump(&stats.shed_queue_full, "serve.shed.queue_full"),
        "overload" => stats.bump(&stats.shed_overload, "serve.shed.overload"),
        "soft_watermark" => stats.bump(&stats.shed_soft_watermark, "serve.shed.soft_watermark"),
        "draining" => stats.bump(&stats.shed_draining, "serve.shed.draining"),
        _ => unreachable!("unmapped shed reason `{reason}`"),
    }
}

/// Admission: one typed response per `PARSE` line, produced here (cache
/// hit / shed) or by whoever inherits the job's reply channel.
fn handle_parse(shared: &Arc<Shared>, text: String, opts: RequestOpts) -> String {
    let stats = &shared.stats;
    stats.bump(&stats.requests, "serve.requests");
    let class = opts
        .class
        .unwrap_or_else(|| SloClass::from_budget(&opts.budget));
    // Fault plans only run on the maspar engine — it is the only backend
    // with a fault model; the host engines reject plans outright.
    let engine_name = if opts.faults.is_some() {
        "maspar".to_string()
    } else {
        opts.engine
            .clone()
            .unwrap_or_else(|| shared.config.engine.clone())
    };
    if engine_for(&engine_name, &shared.config.machine).is_none() {
        stats.bump(&stats.errors, "serve.errors");
        return render_fields(
            "ERR",
            &[("proto", format!("unknown engine `{engine_name}`"))],
        );
    }
    // Drain takes precedence over everything, cache included: a draining
    // server owes nothing but typed rejections.
    if shared.draining() {
        bump_shed(stats, "draining");
        return shed_line("draining", class);
    }
    // Cache lookup before the watermarks: a hit costs no queue slot, which
    // is exactly what makes caching a load-shedding tool and not just a
    // latency one. Faulted requests bypass the cache entirely.
    let digest = if opts.faults.is_none() && shared.config.cache_capacity > 0 {
        Some(request_digest(
            &engine_name,
            &text,
            &opts.budget_spec,
            opts.max_parses,
        ))
    } else {
        None
    };
    if let Some(d) = digest {
        let hit = shared.cache.lock().unwrap().get(d).map(ToString::to_string);
        if let Some(core) = hit {
            stats.bump(&stats.cache_hits, "serve.cache.hits");
            return format!("{core} cached=true retries=0 wall_us=0");
        }
    }
    let depth = shared.queue.depth();
    obsv::gauge_max("serve.queue_depth_peak", depth as f64);
    match decide(
        depth,
        shared.config.soft_watermark,
        shared.config.hard_watermark,
        shared.draining(),
        class,
    ) {
        Admit::Shed(reason) => {
            bump_shed(stats, reason);
            return shed_line(reason, class);
        }
        Admit::Accept => {}
    }
    let (reply, receipt) = mpsc::sync_channel(1);
    let now = Instant::now();
    let job = Job {
        text,
        class,
        engine_name,
        enqueued: now,
        deadline: now + class.queue_allowance(),
        digest,
        reply,
        opts,
    };
    match shared.queue.try_push(job) {
        Ok(depth_after) => obsv::gauge_max("serve.queue_depth_peak", depth_after as f64),
        Err((job, PushError::Full)) => {
            bump_shed(stats, "queue_full");
            return shed_line("queue_full", job.class);
        }
        Err((job, PushError::Closed)) => {
            bump_shed(stats, "draining");
            return shed_line("draining", job.class);
        }
    }
    // The job is queued: a worker or the drain supervisor now owns the
    // response. Blocking here is what serializes one-request-one-response
    // per connection.
    receipt
        .recv()
        .unwrap_or_else(|_| render_fields("ERR", &[("proto", "reply channel dropped".to_string())]))
}

/// May these two queued jobs be serviced as one mega-batch? Coalescing is
/// restricted to jobs whose answers cannot depend on batching: no budget
/// (a wall-time budget is accounted per request), no fault plan (fault
/// horizons are per-request instruction counts), same engine and parse
/// cap. Class may differ — it only shapes admission and the response's
/// `class=` field, both of which stay per-job.
fn coalescable(a: &Job, b: &Job) -> bool {
    let plain = |j: &Job| {
        j.opts.budget_spec.is_empty() && j.opts.faults.is_none() && j.opts.transient.is_none()
    };
    plain(a) && plain(b) && a.engine_name == b.engine_name && a.opts.max_parses == b.opts.max_parses
}

fn worker_loop(shared: &Arc<Shared>) {
    let max_group = shared.config.coalesce.max(1);
    loop {
        let jobs = if max_group > 1 {
            shared.queue.pop_group(max_group, coalescable)
        } else {
            shared.queue.pop().map(|job| vec![job])
        };
        let Some(jobs) = jobs else { break };
        let taken = jobs.len();
        let inflight = shared.inflight.fetch_add(taken, Ordering::SeqCst) + taken;
        obsv::gauge_max("serve.inflight_peak", inflight as f64);
        if taken == 1 {
            let job = &jobs[0];
            let response = service_job(shared, job);
            // The connection may have hung up; the response is still fully
            // accounted either way.
            let _ = job.reply.send(response);
        } else {
            obsv::counter_add("serve.coalesced", taken as u64);
            service_group(shared, jobs);
        }
        shared.inflight.fetch_sub(taken, Ordering::SeqCst);
    }
}

/// Service a coalesced group as one flattened mega-batch. Per-job concerns
/// stay per-job: deadlines are checked first (a coalesced neighbour never
/// turns a live request into a timeout victim — the whole group was
/// dequeued at once), lexicon errors answer individually, and any outcome
/// the mega sweep reports as degraded is replayed on the per-request path
/// so its typed response is byte-compatible with the uncoalesced server.
fn service_group(shared: &Shared, jobs: Vec<Job>) {
    let stats = &shared.stats;
    let start = Instant::now();
    if !shared.config.service_delay.is_zero() {
        thread::sleep(shared.config.service_delay);
    }
    let mut batch: Vec<(Job, cdg_grammar::Sentence)> = Vec::with_capacity(jobs.len());
    for job in jobs {
        if start > job.deadline {
            stats.bump(&stats.timeouts, "serve.timeout");
            let _ = job.reply.send(render_fields(
                "TIMEOUT",
                &[
                    ("class", job.class.name().to_string()),
                    ("waited_ms", (start - job.enqueued).as_millis().to_string()),
                ],
            ));
            continue;
        }
        match shared.lexicon.sentence(&job.text) {
            Ok(s) => batch.push((job, s)),
            Err(e) => {
                stats.bump(&stats.errors, "serve.errors");
                let _ = job
                    .reply
                    .send(render_fields("ERR", &[cause_field(&EngineError::from(e))]));
            }
        }
    }
    let Some((first, _)) = batch.first() else {
        return;
    };
    let engine = engine_for(&first.engine_name, &shared.config.machine)
        .expect("engine name validated at admission");
    let sentences: Vec<cdg_grammar::Sentence> = batch.iter().map(|(_, s)| s.clone()).collect();
    let request = ParseRequest::new(&shared.grammar)
        .max_parses(first.opts.max_parses)
        .batch_strategy(cdg_core::BatchStrategy::Mega);
    let report = match engine.parse_batch(&sentences, &request) {
        Ok(report) => report,
        Err(_) => {
            // A whole-batch refusal (no coalescable engine should produce
            // one) falls back to the per-request path: every job still
            // gets its one typed response.
            for (job, _) in &batch {
                let response = service_job(shared, job);
                let _ = job.reply.send(response);
            }
            return;
        }
    };
    for ((job, _), outcome) in batch.iter().zip(&report.outcomes) {
        if outcome.degraded {
            // Coalesced jobs carry no budget, so degradation means the
            // engine rejected the sentence itself (e.g. a layout the
            // simulated array cannot take). Replay individually for the
            // exact typed error.
            let response = service_job(shared, job);
            let _ = job.reply.send(response);
            continue;
        }
        stats.bump(&stats.ok, "serve.ok");
        let core = render_fields(
            "OK",
            &[
                ("accepted", outcome.accepted.to_string()),
                ("ambiguous", outcome.ambiguous.to_string()),
                ("parses", outcome.parses.len().to_string()),
                ("passes", outcome.filter_passes.to_string()),
                ("engine", job.engine_name.clone()),
                ("class", job.class.name().to_string()),
            ],
        );
        if let Some(d) = job.digest {
            stats.bump(&stats.cache_misses, "serve.cache.misses");
            shared.cache.lock().unwrap().insert(d, core.clone());
        }
        let _ = job.reply.send(format!(
            "{core} cached=false retries=0 wall_us={}",
            start.elapsed().as_micros()
        ));
    }
}

/// Run one admitted job to a response line. Deadline first: parsing for a
/// caller that already gave up would deepen the overload that delayed it.
fn service_job(shared: &Shared, job: &Job) -> String {
    let stats = &shared.stats;
    let start = Instant::now();
    if start > job.deadline {
        stats.bump(&stats.timeouts, "serve.timeout");
        return render_fields(
            "TIMEOUT",
            &[
                ("class", job.class.name().to_string()),
                ("waited_ms", (start - job.enqueued).as_millis().to_string()),
            ],
        );
    }
    if !shared.config.service_delay.is_zero() {
        thread::sleep(shared.config.service_delay);
    }
    let sentence = match shared.lexicon.sentence(&job.text) {
        Ok(s) => s,
        Err(e) => {
            stats.bump(&stats.errors, "serve.errors");
            return render_fields("ERR", &[cause_field(&EngineError::from(e))]);
        }
    };
    let engine = engine_for(&job.engine_name, &shared.config.machine)
        .expect("engine name validated at admission");
    let options = ParseOptions {
        budget: job.opts.budget,
        ..Default::default()
    };
    let mut request = ParseRequest::new(&shared.grammar)
        .sentence(sentence)
        .options(options)
        .max_parses(job.opts.max_parses);
    if let Some(plan) = &job.opts.faults {
        request = request.faults(plan.clone());
    }
    let (result, retry_stats) = parse_with_retry(
        engine.as_ref(),
        &request,
        job.opts.transient,
        &shared.config.retry,
        thread::sleep,
    );
    if retry_stats.retries > 0 {
        stats
            .retries
            .fetch_add(retry_stats.retries, Ordering::Relaxed);
        obsv::counter_add("serve.retries", retry_stats.retries);
    }
    match result {
        Ok(report) => {
            let mut fields = vec![
                ("accepted", report.accepted.to_string()),
                ("ambiguous", report.ambiguous.to_string()),
                ("parses", report.parses.len().to_string()),
                ("passes", report.filter_passes.to_string()),
                ("engine", job.engine_name.clone()),
                ("class", job.class.name().to_string()),
            ];
            let status = match &report.degraded {
                Some(cause) => {
                    fields.push(cause_field(cause));
                    stats.bump(&stats.degraded, "serve.degraded");
                    "DEGRADED"
                }
                None => {
                    stats.bump(&stats.ok, "serve.ok");
                    "OK"
                }
            };
            let core = render_fields(status, &fields);
            if let Some(d) = job.digest {
                stats.bump(&stats.cache_misses, "serve.cache.misses");
                shared.cache.lock().unwrap().insert(d, core.clone());
            }
            format!(
                "{core} cached=false retries={} wall_us={}",
                retry_stats.retries,
                start.elapsed().as_micros()
            )
        }
        Err(e) if e.is_transient() => {
            stats.bump(&stats.faults, "serve.fault");
            let line = render_fields("FAULT", &[cause_field(&e)]);
            format!("{line} retries={}", retry_stats.retries)
        }
        Err(e) => {
            stats.bump(&stats.errors, "serve.errors");
            render_fields("ERR", &[cause_field(&e)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_loader_knows_the_shipped_grammars() {
        for name in ["paper", "english"] {
            let config = ServeConfig {
                grammar: name.into(),
                ..Default::default()
            };
            let (_, lex) = load_grammar(&config).unwrap();
            assert!(!lex.is_empty());
        }
        assert!(load_grammar(&ServeConfig {
            grammar: "klingon".into(),
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn server_rejects_bad_config_before_binding() {
        match Server::start(ServeConfig {
            engine: "abacus".into(),
            ..Default::default()
        }) {
            Err(err) => assert!(err.contains("unknown engine")),
            Ok(_) => panic!("bad engine name must fail fast"),
        }
    }
}
