//! Offline stand-in for [rand 0.8](https://crates.io/crates/rand).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the rand 0.8 API it uses: `SmallRng`, `SeedableRng`, the
//! `Rng` extension trait (`gen_range`, `gen_bool`, `gen`), and
//! `seq::SliceRandom::shuffle`. The generator is SplitMix64-seeded
//! xorshift64*: deterministic per seed, which is all the corpus generators
//! and tests rely on — they fix every seed explicitly.

/// Base trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A type that can be sampled uniformly from an integer range.
pub trait SampleUniform: Copy {
    fn sample_in(low: Self, high_exclusive: Self, rng: &mut dyn RngCore) -> Self;
    fn checked_next(self) -> Option<Self>;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(low: Self, high_exclusive: Self, rng: &mut dyn RngCore) -> Self {
                assert!(low < high_exclusive, "gen_range: empty range");
                let span = (high_exclusive as i128 - low as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
            fn checked_next(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    type Output: SampleUniform;
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

impl<T: SampleUniform + PartialOrd> SampleRange for std::ops::Range<T> {
    type Output = T;
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange for std::ops::RangeInclusive<T> {
    type Output = T;
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (start, end) = self.into_inner();
        let high = end
            .checked_next()
            .expect("gen_range: inclusive range ends at type maximum");
        T::sample_in(start, high, rng)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard {
    fn gen_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn gen_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn gen_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing extension trait, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0, 1]");
        // 53 bits of uniform mantissa, exactly as rand's Bernoulli does.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: SplitMix64 seeding into xorshift64*.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 step decouples nearby seeds.
            let mut z = state.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates), the only `seq` feature used here.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let seq_a: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 40)).collect();
        let seq_c: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1 << 40)).collect();
        assert_ne!(seq_a, seq_c, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..500 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1usize..=8);
            assert!((1..=8).contains(&w));
            let s = rng.gen_range(-10isize..10);
            assert!((-10..10).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
