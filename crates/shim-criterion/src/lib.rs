//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this crate vendors the
//! bench-definition surface the workspace's `benches/` use: `Criterion`,
//! `benchmark_group`, `bench_with_input`, `Bencher::{iter, iter_batched}`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros. Instead of statistical sampling, each registered benchmark runs
//! its routine a handful of times and reports the best observed wall time —
//! enough for `cargo bench` to act as a smoke test and for relative
//! comparisons; real measurement belongs to the genuine crate.

use std::fmt;
use std::time::{Duration, Instant};

/// How many times the stand-in executes each routine.
const SMOKE_ITERS: u32 = 3;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Batch-size hint for `iter_batched`; ignored by the stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to bench closures; runs the routine and records timing.
pub struct Bencher {
    best: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..SMOKE_ITERS {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.record(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..SMOKE_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.record(start.elapsed());
        }
    }

    fn record(&mut self, elapsed: Duration) {
        self.best = Some(match self.best {
            Some(best) => best.min(elapsed),
            None => elapsed,
        });
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sampling configuration: accepted, ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<R>(&mut self, id: impl fmt::Display, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher { best: None };
        routine(&mut b);
        self.report(&id.to_string(), b.best);
        self
    }

    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { best: None };
        routine(&mut b, input);
        self.report(&id.to_string(), b.best);
        self
    }

    fn report(&self, id: &str, best: Option<Duration>) {
        match best {
            Some(d) => println!("{}/{id}: best of {SMOKE_ITERS} = {d:?}", self.name),
            None => println!("{}/{id}: routine never ran", self.name),
        }
    }

    pub fn finish(self) {}
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} (offline criterion stand-in, smoke run)");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }
}

/// Re-export so `criterion::black_box` callers compile; `std::hint` version.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        let mut runs = 0u32;
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * n
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(|| n, |v| v + 1, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(runs, SMOKE_ITERS);
    }
}
