//! Parallel CDG parsing — the paper's §2.1 CRCW P-RAM algorithm, realized
//! with rayon, plus a step-counted 2-D mesh emulation for the Figure 8
//! comparison.
//!
//! The P-RAM analysis assigns one (virtual) processor per pair of role
//! values — O(n⁴) processors — and observes that every phase is a flat,
//! independent sweep:
//!
//! * role-value generation: O(1) time, O(n²) processors;
//! * each unary constraint: O(1) time, O(n²) processors;
//! * each binary constraint: O(1) time, O(n⁴) processors;
//! * one consistency-maintenance step: O(1) time, O(n⁴) processors (the
//!   row-ORs and per-value ANDs are constant-time on a CRCW P-RAM);
//! * filtering: bounded iterations of the above.
//!
//! Total: O(k) parallel steps. On a real host rayon multiplexes those
//! virtual processors onto cores; [`pram::PramStats`] counts the *parallel
//! steps* and the *maximum width* (virtual processors) of each phase so the
//! benchmarks can verify the O(k) step bound independently of core count,
//! while wall-clock measurements show the data-parallel speedup.
//!
//! Determinism: every phase collects its decisions from a read-only
//! snapshot and applies them afterwards, so results are identical to the
//! sequential engine (tested, including proptest equivalence).

pub mod batch;
pub mod engine;
pub mod extract_par;
pub mod mesh;
pub mod pram;

pub use batch::{parse_batch, parse_batch_mega};
pub use engine::Pram;
pub use extract_par::precedence_graphs_par;
pub use mesh::{MeshCdg, MeshStats};
pub use pram::{parse_pram, PramOutcome, PramStats};
