//! Parallel precedence-graph extraction.
//!
//! Extraction (the backtracking search of §1.4) runs on the front end in
//! the paper, after the PE array has settled the network. On a multi-core
//! host the search tree's first branching level can be explored in
//! parallel: each alive value of the most-constrained slot roots an
//! independent subtree. Results are identical to the sequential
//! enumerator (same ordering contract: sorted, deduplicated).

use cdg_core::extract::PrecedenceGraph;
use cdg_core::network::{Network, SlotId};
use rayon::prelude::*;

/// Enumerate up to `limit` precedence graphs, fanning the top level of the
/// backtracking search across threads. Equivalent to
/// [`cdg_core::extract::precedence_graphs`] (property-tested).
pub fn precedence_graphs_par(net: &Network<'_>, limit: usize) -> Vec<PrecedenceGraph> {
    let _phase = obsv::span("extraction");
    assert!(net.arcs_ready(), "extraction needs arc matrices");
    if limit == 0 || !net.all_roles_nonempty() {
        return Vec::new();
    }
    let nslots = net.num_slots();
    let mut order: Vec<SlotId> = (0..nslots).collect();
    order.sort_by_key(|&s| net.slot(s).alive_count());
    let root = order[0];

    let mut graphs: Vec<PrecedenceGraph> = net
        .slot(root)
        .alive_indices()
        .into_par_iter()
        .flat_map_iter(|idx| {
            // Each branch gets its own chosen-stack; `limit` bounds each
            // branch (over-collection is trimmed after the global sort so
            // the result set matches the sequential enumerator's).
            let mut chosen = vec![(root, idx)];
            let mut results = Vec::new();
            branch(net, &order, &mut chosen, &mut results, limit);
            results
                .into_iter()
                .map(|choice| {
                    let mut assignment = vec![None; nslots];
                    for (slot, i) in choice {
                        assignment[slot] = Some(net.slot(slot).domain[i]);
                    }
                    PrecedenceGraph {
                        assignment: assignment.into_iter().map(Option::unwrap).collect(),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();
    graphs.sort();
    graphs.dedup();
    graphs.truncate(limit);
    graphs
}

fn branch(
    net: &Network<'_>,
    order: &[SlotId],
    chosen: &mut Vec<(SlotId, usize)>,
    results: &mut Vec<Vec<(SlotId, usize)>>,
    limit: usize,
) {
    if results.len() >= limit {
        return;
    }
    let depth = chosen.len();
    if depth == order.len() {
        results.push(chosen.clone());
        return;
    }
    let slot = order[depth];
    for idx in net.slot(slot).alive.iter_ones() {
        let consistent = chosen
            .iter()
            .all(|&(other, oidx)| net.arc_entry(slot, idx, other, oidx));
        if consistent {
            chosen.push((slot, idx));
            branch(net, order, chosen, results, limit);
            chosen.pop();
            if results.len() >= limit {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdg_core::parser::{parse, ParseOptions};
    use cdg_grammar::grammars::{english, paper};

    fn settled<'g>(g: &'g cdg_grammar::Grammar, s: &cdg_grammar::Sentence) -> Network<'g> {
        parse(g, s, ParseOptions::default()).network
    }

    #[test]
    fn matches_sequential_on_unambiguous() {
        let g = paper::grammar();
        let s = paper::example_sentence(&g);
        let net = settled(&g, &s);
        assert_eq!(
            precedence_graphs_par(&net, 10),
            cdg_core::extract::precedence_graphs(&net, 10)
        );
    }

    #[test]
    fn matches_sequential_on_ambiguous() {
        let g = english::grammar();
        let lex = english::lexicon(&g);
        for text in [
            "the dog runs in the park",
            "the man watches the dog with the telescope",
            "the dog sees the cat in the park near the table",
        ] {
            let s = lex.sentence(text).unwrap();
            let net = settled(&g, &s);
            for limit in [1usize, 2, 5, 1000] {
                assert_eq!(
                    precedence_graphs_par(&net, limit),
                    cdg_core::extract::precedence_graphs(&net, limit),
                    "`{text}` limit {limit}"
                );
            }
        }
    }

    #[test]
    fn unpropagated_network_enumeration() {
        // Large fan-out exercises the parallel split.
        let g = paper::grammar();
        let s = paper::example_sentence(&g);
        let mut net = cdg_core::network::Network::build(&g, &s);
        net.init_arcs();
        let par = precedence_graphs_par(&net, 200);
        let seq = cdg_core::extract::precedence_graphs(&net, 200);
        assert_eq!(par, seq);
        assert_eq!(par.len(), 200);
    }

    #[test]
    fn rejection_and_zero_limit() {
        let g = paper::grammar();
        let lex = paper::lexicon(&g);
        let s = lex.sentence("program the runs").unwrap();
        let net = settled(&g, &s);
        assert!(precedence_graphs_par(&net, 10).is_empty());
        let s = paper::example_sentence(&g);
        let net = settled(&g, &s);
        assert!(precedence_graphs_par(&net, 0).is_empty());
    }
}
