//! The [`Engine`] implementation for the P-RAM backend.

use crate::pram::parse_pram;
use cdg_core::api::{record_net_stats, BatchReport, Engine, ObsvScope, ParseReport, ParseRequest};
use cdg_core::consistency::is_locally_consistent;
use cdg_core::EngineError;
use cdg_grammar::Sentence;
use std::time::Instant;

/// The CRCW-P-RAM engine (§2.1): intra-sentence parallelism for single
/// parses, sentence-parallel fan-out for batches.
///
/// `ParseRequest::threads` resizes the global rayon pool (like the CLI's
/// `--threads`); `ParseRequest::budget` is not enforced by this engine —
/// the P-RAM pipeline has no budget checkpoints — so reports never come
/// back degraded.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pram;

impl Engine for Pram {
    fn name(&self) -> &'static str {
        "pram"
    }

    fn parse<'g>(&self, req: &ParseRequest<'g>) -> Result<ParseReport<'g>, EngineError> {
        let sentence = req.require_sentence()?;
        req.reject_faults(self.name())?;
        if let Some(threads) = req.threads {
            rayon::set_num_threads(threads);
        }
        let scope = ObsvScope::begin(req);
        let start = Instant::now();
        let (outcome, parses) = {
            let _root = obsv::span("parse");
            let outcome = parse_pram(req.grammar, sentence, req.options);
            let parses = outcome.parses(req.max_parses);
            (outcome, parses)
        };
        record_net_stats(&outcome.network.stats);
        obsv::counter_add("pram.steps", outcome.stats.steps as u64);
        obsv::gauge_set("pram.max_width", outcome.stats.max_width as f64);
        obsv::histogram_record("filter.passes", outcome.filter_passes as f64);
        let locally_consistent = is_locally_consistent(&outcome.network);
        let (trace, metrics) = scope.finish();
        Ok(ParseReport {
            engine: self.name(),
            accepted: outcome.accepted(),
            ambiguous: outcome.network.slots().iter().any(|s| s.alive_count() > 1),
            roles_nonempty: outcome.roles_nonempty,
            locally_consistent,
            filter_passes: outcome.filter_passes,
            degraded: None,
            fault_recovered: false,
            parses,
            wall: start.elapsed(),
            trace,
            metrics,
            network: outcome.network,
        })
    }

    fn parse_batch(
        &self,
        sentences: &[Sentence],
        req: &ParseRequest<'_>,
    ) -> Result<BatchReport, EngineError> {
        req.reject_faults(self.name())?;
        if let Some(threads) = req.threads {
            rayon::set_num_threads(threads);
        }
        let scope = ObsvScope::begin(req);
        let start = Instant::now();
        let outcomes = match req.batch {
            cdg_core::BatchStrategy::PerSentence => {
                crate::batch::parse_batch(req.grammar, sentences, req.options, req.max_parses)
            }
            cdg_core::BatchStrategy::Mega => {
                crate::batch::parse_batch_mega(req.grammar, sentences, req.options, req.max_parses)
            }
        };
        obsv::counter_add("batch.sentences", sentences.len() as u64);
        let (trace, metrics) = scope.finish();
        Ok(BatchReport {
            engine: self.name(),
            outcomes,
            wall: start.elapsed(),
            trace,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdg_core::api::Sequential;
    use cdg_core::parser::ParseOptions;
    use cdg_grammar::grammars::{english, paper};
    use std::sync::Mutex;

    static OBSV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn report_matches_the_sequential_engine() {
        let g = english::grammar();
        let lex = english::lexicon(&g);
        let s = lex.sentence("the dog runs in the park").unwrap();
        let req = ParseRequest::new(&g).sentence(s).max_parses(50);
        let serial = Sequential.parse(&req).unwrap();
        let pram = Pram.parse(&req).unwrap();
        assert_eq!(pram.engine, "pram");
        assert_eq!(pram.accepted, serial.accepted);
        assert_eq!(pram.ambiguous, serial.ambiguous);
        assert_eq!(pram.parses, serial.parses);
        assert_eq!(pram.network.total_alive(), serial.network.total_alive());
    }

    #[test]
    fn trace_covers_the_paper_phases_in_parallel() {
        let _l = OBSV_LOCK.lock().unwrap();
        let g = paper::grammar();
        let s = paper::example_sentence(&g);
        let report = Pram
            .parse(&ParseRequest::new(&g).sentence(s).trace(true).metrics(true))
            .unwrap();
        let names = report.trace.as_ref().unwrap().names();
        for phase in [
            "parse",
            "network_build",
            "unary_propagation",
            "arc_init",
            "binary_propagation",
            "filtering",
            "maintain",
            "extraction",
        ] {
            assert!(names.iter().any(|n| n == phase), "missing span `{phase}`");
        }
        let snap = report.metrics.unwrap();
        assert!(snap.counter("pram.steps").unwrap() > 0);
    }

    #[test]
    fn batch_via_trait_matches_free_function() {
        let g = english::grammar();
        let lex = english::lexicon(&g);
        let sentences: Vec<_> = ["the dog runs", "dog the runs", "she sleeps"]
            .iter()
            .map(|t| lex.sentence(t).unwrap())
            .collect();
        let free = crate::batch::parse_batch(&g, &sentences, ParseOptions::default(), 10);
        let report = Pram
            .parse_batch(&sentences, &ParseRequest::new(&g).max_parses(10))
            .unwrap();
        assert_eq!(report.outcomes, free);
        assert_eq!(report.accepted(), 2);
    }
}
