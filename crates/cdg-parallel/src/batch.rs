//! Sentence-parallel batch parsing.
//!
//! The paper parallelizes *within* one sentence (O(n⁴) virtual processors
//! per arc sweep); a corpus offers the complementary, embarrassingly
//! parallel axis: sentences are independent, so a batch fans out across
//! cores with one worker per chunk of sentences. Each chunk carries its own
//! [`ArcPool`] (via `map_init`), so arc-matrix buffers are recycled
//! *within* a chunk and never contended *between* chunks.
//!
//! Determinism: chunk boundaries depend only on the batch length (the
//! shim-rayon contract) and each sentence's parse is independent of its
//! neighbours, so the returned summaries are byte-identical to
//! [`cdg_core::parse_batch`] at any thread count — asserted by the
//! determinism suite.

use cdg_core::{parse_batch_mega_with_pool, parse_with_pool, ArcPool, BatchOutcome, ParseOptions};
use cdg_grammar::{Grammar, Sentence};
use rayon::prelude::*;

/// Parse every sentence under one grammar, in parallel across sentences,
/// with per-worker pooled arc-matrix allocations. Outcomes are in input
/// order and identical to [`cdg_core::parse_batch`].
pub fn parse_batch(
    grammar: &Grammar,
    sentences: &[Sentence],
    options: ParseOptions,
    max_parses: usize,
) -> Vec<BatchOutcome> {
    sentences
        .par_iter()
        .map_init(ArcPool::new, move |pool, sentence| {
            // Per-sentence root span; each worker merges its completed tree
            // into the global trace buffer on drop (see `obsv::span`).
            let _root = obsv::span("parse");
            let outcome = parse_with_pool(grammar, sentence, options, pool);
            let summary = BatchOutcome::summarize(&outcome, max_parses);
            outcome.network.recycle(pool);
            summary
        })
        .collect()
}

/// Sentence-parallel mega-batching: the batch is cut into one contiguous
/// chunk per worker, and each chunk is flattened into a joined SoA sweep
/// ([`cdg_core::megabatch`]) with its own [`ArcPool`]. Chunk boundaries
/// depend only on the batch length and thread count, and each sentence's
/// result is independent of its chunk-mates, so outcomes are byte-identical
/// to [`parse_batch`] (and to `cdg_core::parse_batch`) at any thread count.
pub fn parse_batch_mega(
    grammar: &Grammar,
    sentences: &[Sentence],
    options: ParseOptions,
    max_parses: usize,
) -> Vec<BatchOutcome> {
    let workers = rayon::current_num_threads().max(1);
    let chunk = sentences.len().div_ceil(workers).max(1);
    let ranges: Vec<(usize, usize)> = (0..sentences.len())
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(sentences.len())))
        .collect();
    let per_chunk: Vec<Vec<BatchOutcome>> = ranges
        .par_iter()
        .map_init(ArcPool::new, move |pool, &(start, end)| {
            parse_batch_mega_with_pool(grammar, &sentences[start..end], options, max_parses, pool)
        })
        .collect();
    per_chunk.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdg_grammar::grammars::english;

    #[test]
    fn parallel_batch_matches_sequential_batch() {
        let g = english::grammar();
        let lex = english::lexicon(&g);
        let sentences: Vec<Sentence> = [
            "the dog runs",
            "dog the runs",
            "the dog runs in the park",
            "the watch runs",
            "she sleeps",
            "the big red dog sees a small cat",
            "they often watch dogs near the table",
            "runs sees",
        ]
        .iter()
        .map(|t| lex.sentence(t).unwrap())
        .collect();

        let seq = cdg_core::parse_batch(&g, &sentences, ParseOptions::default(), 50);
        for threads in [1usize, 2, 8] {
            rayon::set_num_threads(threads);
            let par = parse_batch(&g, &sentences, ParseOptions::default(), 50);
            assert_eq!(seq, par, "batch diverged at {threads} threads");
            let mega = parse_batch_mega(&g, &sentences, ParseOptions::default(), 50);
            assert_eq!(seq, mega, "mega batch diverged at {threads} threads");
        }
        rayon::set_num_threads(0);
    }

    #[test]
    fn mega_chunking_handles_tiny_and_empty_batches() {
        let g = english::grammar();
        let lex = english::lexicon(&g);
        assert!(parse_batch_mega(&g, &[], ParseOptions::default(), 10).is_empty());
        let one = vec![lex.sentence("she sleeps").unwrap()];
        let out = parse_batch_mega(&g, &one, ParseOptions::default(), 10);
        assert_eq!(out.len(), 1);
        assert!(out[0].accepted);
    }
}
