//! A step-counted 2-D mesh emulation of CDG parsing — the "2D Mesh" row of
//! the paper's Figure 8.
//!
//! Model: the O(n²) arcs of the constraint network are distributed over a
//! grid of cells, one cell per pair of role slots (so O(q²n²) = O(n²)
//! cells, each holding one O(n)×O(n) arc matrix). Instruction broadcast is
//! free (SIMD-style), each cell processes its local arc entries
//! sequentially, and reductions for consistency maintenance travel by
//! nearest-neighbour hops: a reduction across the cell grid of side s costs
//! 2(s−1) hops.
//!
//! The emulation executes the real algorithm (piggybacking on
//! `cdg-core` for the per-arc work) while counting:
//!
//! * `local_steps` — the maximum sequential work any single cell performed
//!   (the critical path of compute);
//! * `comm_steps` — nearest-neighbour hops spent on reductions.
//!
//! Observed shape: local work is Θ(k·n²) per cell (each constraint sweeps
//! each cell's O(n²) entries) and communication is Θ(passes·n). Figure 8
//! lists the mesh CDG time as O(k + n²); that bound is attainable only if
//! the k constraint sweeps are pipelined through each cell's entries —
//! which the MP-1 (a machine with a global router, not a plain mesh) does
//! not need. EXPERIMENTS.md records both the measured exponent and this
//! note.

use cdg_core::network::Network;
use cdg_core::parser::{FilterMode, ParseOptions};
use cdg_grammar::{Grammar, Sentence};

/// Step counts from a mesh run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshStats {
    /// Number of mesh cells (one per arc): q²·C(n·q, 2)-ish, O(n²).
    pub cells: usize,
    /// Side of the (conceptually square) cell grid.
    pub grid_side: usize,
    /// Maximum sequential entry-operations performed by any one cell.
    pub local_steps: usize,
    /// Nearest-neighbour communication hops for reductions.
    pub comm_steps: usize,
    /// Consistency-maintenance passes.
    pub passes: usize,
}

impl MeshStats {
    /// The critical-path step count of the run.
    pub fn total_steps(&self) -> usize {
        self.local_steps + self.comm_steps
    }
}

/// The mesh emulation engine.
pub struct MeshCdg;

impl MeshCdg {
    /// Run the full pipeline, returning the settled network and mesh step
    /// accounting. The network state is identical to the sequential
    /// engine's (the mesh changes *where* work happens, not *what* work).
    pub fn run<'g>(
        grammar: &'g Grammar,
        sentence: &Sentence,
        options: ParseOptions,
    ) -> (Network<'g>, MeshStats) {
        let mut net = Network::build(grammar, sentence);
        let mut stats = MeshStats::default();

        // Cell geometry: one cell per arc.
        let nslots = net.num_slots();
        stats.cells = nslots * (nslots.saturating_sub(1)) / 2;
        stats.grid_side = (stats.cells as f64).sqrt().ceil() as usize;

        // Per-cell work of a sweep = the largest arc matrix's alive area.
        let max_arc_area = |net: &Network<'_>| -> usize {
            net.arc_pairs()
                .iter()
                .map(|&(i, j, _)| net.slot(i).alive_count() * net.slot(j).alive_count())
                .max()
                .unwrap_or(0)
        };
        // Unary sweeps: role values are partitioned across cells too; the
        // dominant cost is the largest slot domain.
        let max_domain = net
            .slots()
            .iter()
            .map(|s| s.domain.len())
            .max()
            .unwrap_or(0);

        if options.arcs_before_unary {
            net.init_arcs();
        }
        for c in grammar.unary_constraints() {
            cdg_core::propagate::apply_unary(&mut net, c);
            stats.local_steps += max_domain;
        }
        if !options.arcs_before_unary {
            net.init_arcs();
        }
        for c in grammar.binary_constraints() {
            let area = max_arc_area(&net);
            cdg_core::propagate::apply_binary(&mut net, c);
            stats.local_steps += area;
        }
        if sentence.has_lexical_ambiguity() {
            for c in grammar.unary_constraints() {
                let area = max_arc_area(&net);
                cdg_core::propagate::apply_unary_pairwise(&mut net, c);
                stats.local_steps += area;
            }
        }

        let max_passes = match options.filter {
            FilterMode::None => 0,
            FilterMode::Bounded(m) => m,
            FilterMode::Fixpoint => usize::MAX,
        };
        let mut passes = 0;
        while passes < max_passes {
            passes += 1;
            // Local support ORs: each cell scans its matrix once...
            stats.local_steps += max_arc_area(&net);
            // ...then per-role AND reductions cross the cell grid.
            stats.comm_steps += 2 * stats.grid_side.saturating_sub(1);
            if cdg_core::consistency::maintain(&mut net) == 0 {
                break;
            }
        }
        stats.passes = passes;
        (net, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdg_grammar::grammars::paper;

    #[test]
    fn mesh_matches_sequential_results() {
        let g = paper::grammar();
        let s = paper::example_sentence(&g);
        let opts = ParseOptions::default();
        let serial = cdg_core::parse(&g, &s, opts);
        let (net, stats) = MeshCdg::run(&g, &s, opts);
        for (a, b) in serial.network.slots().iter().zip(net.slots()) {
            assert_eq!(a.alive, b.alive);
        }
        assert!(stats.cells > 0);
        assert!(stats.local_steps > 0);
        assert!(stats.comm_steps > 0);
        assert!(stats.total_steps() >= stats.local_steps);
    }

    #[test]
    fn cell_count_grows_quadratically() {
        let g = paper::grammar();
        let opts = ParseOptions {
            filter: FilterMode::Bounded(2),
            ..Default::default()
        };
        let cells: Vec<usize> = [4usize, 8]
            .iter()
            .map(|&n| {
                let s = paper::cost_sweep_sentence(&g, n);
                MeshCdg::run(&g, &s, opts).1.cells
            })
            .collect();
        // Doubling n quadruples the slot count's square-ish cell count.
        let ratio = cells[1] as f64 / cells[0] as f64;
        assert!(
            (3.0..5.0).contains(&ratio),
            "cells {cells:?}, ratio {ratio}"
        );
    }

    #[test]
    fn local_work_grows_quadratically_with_n() {
        // Per-cell work is Θ(k·n²): doubling n should roughly quadruple
        // local steps (the largest arc matrix has O(n)×O(n) alive area).
        let g = paper::grammar();
        let opts = ParseOptions {
            filter: FilterMode::Bounded(1),
            ..Default::default()
        };
        let steps: Vec<usize> = [6usize, 12]
            .iter()
            .map(|&n| {
                let s = paper::cost_sweep_sentence(&g, n);
                MeshCdg::run(&g, &s, opts).1.local_steps
            })
            .collect();
        let ratio = steps[1] as f64 / steps[0] as f64;
        assert!(
            (2.5..6.0).contains(&ratio),
            "local steps {steps:?}, ratio {ratio}"
        );
    }
}
