//! The CRCW-P-RAM-style engine on rayon.

use bitmat::BitVec;
use cdg_core::kernel::{kernel_arc, slot_signatures, ArcKernelCounts, KernelScratch, SlotSigs};
use cdg_core::network::{EvalStrategy, Network, RoleSlot};
use cdg_core::parser::{FilterMode, ParseOptions};
use cdg_core::PrecedenceGraph;
use cdg_grammar::kernel::KernelProgram;
use cdg_grammar::{Arity, Constraint, Grammar, Sentence};
use rayon::prelude::*;

/// Parallel-step and width accounting for the P-RAM model.
///
/// `steps` counts synchronous parallel rounds (the quantity the paper
/// bounds by O(k)); `max_width` is the largest number of virtual processors
/// any round would occupy (the paper's O(n⁴)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PramStats {
    /// Synchronous parallel rounds executed.
    pub steps: usize,
    /// Maximum virtual processors used by any single round.
    pub max_width: usize,
    /// Consistency-maintenance passes run (each costs O(1) rounds).
    pub maintain_passes: usize,
    /// Role values removed in total.
    pub removals: usize,
}

impl PramStats {
    fn round(&mut self, width: usize) {
        self.steps += 1;
        self.max_width = self.max_width.max(width);
    }
}

/// Outcome of a P-RAM parse: the settled network plus step accounting.
#[derive(Debug)]
pub struct PramOutcome<'g> {
    pub network: Network<'g>,
    pub stats: PramStats,
    pub roles_nonempty: bool,
    pub filter_passes: usize,
}

impl<'g> PramOutcome<'g> {
    pub fn accepted(&self) -> bool {
        self.roles_nonempty && cdg_core::extract::has_parse(&self.network)
    }

    /// Enumerate parses with the parallel extractor (identical results to
    /// the sequential one; see `extract_par`).
    pub fn parses(&self, limit: usize) -> Vec<PrecedenceGraph> {
        crate::extract_par::precedence_graphs_par(&self.network, limit)
    }

    /// Propagate additional constraints in parallel — the P-RAM analogue
    /// of `ParseOutcome::propagate_extra` (§1.5 contextual constraint
    /// sets), followed by maintenance to the fixpoint.
    pub fn propagate_extra(&mut self, constraints: &[Constraint]) {
        for c in constraints {
            match c.arity {
                Arity::Unary => {
                    apply_unary_par(&mut self.network, c, &mut self.stats);
                }
                Arity::Binary => {
                    apply_binary_par(&mut self.network, c, &mut self.stats);
                }
            }
        }
        loop {
            self.filter_passes += 1;
            if maintain_par(&mut self.network, &mut self.stats) == 0 {
                break;
            }
        }
        self.roles_nonempty = self.network.all_roles_nonempty();
    }
}

/// Group removal indices by slot for the arc-parallel removal sweep.
fn group_by_slot(num_slots: usize, doomed: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut by_slot = vec![Vec::new(); num_slots];
    for &(slot, idx) in doomed {
        by_slot[slot].push(idx);
    }
    by_slot
}

/// Apply removals: flip alive bits, then zero rows/columns arc-parallel
/// (each worker owns one arc matrix — race-free by construction).
fn remove_values_par(net: &mut Network<'_>, doomed: &[(usize, usize)], stats: &mut PramStats) {
    if doomed.is_empty() {
        return;
    }
    stats.removals += doomed.len();
    let by_slot = group_by_slot(net.num_slots(), doomed);
    if net.arcs_ready() {
        let parts = net.parts_mut();
        parts
            .arcs
            .par_iter_mut()
            .zip(parts.pairs.par_iter())
            .for_each(|(m, &(i, j, _))| {
                for &idx in &by_slot[i] {
                    m.zero_row(idx);
                }
                for &idx in &by_slot[j] {
                    m.zero_col(idx);
                }
            });
    }
    for (slot_id, idxs) in by_slot.iter().enumerate() {
        for &idx in idxs {
            net.clear_alive(slot_id, idx);
        }
    }
    // One parallel round for the zeroing sweep.
    stats.round(doomed.len() * net.num_slots());
}

/// One unary constraint over all role values, in parallel. O(1) P-RAM
/// rounds, width O(n²).
pub fn apply_unary_par(net: &mut Network<'_>, c: &Constraint, stats: &mut PramStats) -> usize {
    debug_assert_eq!(c.arity, Arity::Unary);
    let sentence = net.sentence().clone();
    let doomed: Vec<(usize, usize)> = net
        .slots()
        .par_iter()
        .enumerate()
        .flat_map_iter(|(slot_id, slot)| {
            slot.alive
                .iter_ones()
                .filter(|&idx| !c.check_unary(&sentence, slot.binding(idx)))
                .map(move |idx| (slot_id, idx))
                .collect::<Vec<_>>()
        })
        .collect();
    stats.round(net.total_alive());
    remove_values_par(net, &doomed, stats);
    doomed.len()
}

/// Sum of alive-pair products over all arcs — the virtual-processor width
/// of one arc-parallel round.
fn pairwise_width(net: &Network<'_>) -> usize {
    let slots = net.slots();
    net.arc_pairs()
        .iter()
        .map(|&(i, j, _)| slots[i].alive_count() * slots[j].alive_count())
        .sum()
}

/// The arc-parallel kernel sweep: compile once, then each worker owns one
/// arc and runs the shared signature-memoized mask loop ([`kernel_arc`]).
/// Bit-identical to the naive sweep; see `cdg_core::kernel`.
fn apply_pairwise_kernel_par(net: &mut Network<'_>, c: &Constraint) -> usize {
    let prog = KernelProgram::compile(&c.expr);
    let mut totals = ArcKernelCounts::default();
    let mut sig_stack = Vec::new();
    let sigs: Vec<SlotSigs> = {
        let sentence = net.sentence();
        net.slots()
            .iter()
            .map(|s| slot_signatures(&prog, sentence, s, &mut sig_stack, &mut totals.checks))
            .collect()
    };
    let parts = net.parts_mut();
    let slots = parts.slots;
    let sentence = parts.sentence;
    let per_arc: Vec<ArcKernelCounts> = parts
        .arcs
        .par_iter_mut()
        .zip(parts.pairs.par_iter())
        .map_init(KernelScratch::new, |scratch, (m, &(i, j, _))| {
            kernel_arc(
                &prog, sentence, &slots[i], &slots[j], &sigs[i], &sigs[j], m, scratch,
            )
        })
        .collect();
    for counts in per_arc {
        totals.absorb(counts);
    }
    parts.stats.binary_checks += totals.checks;
    parts.stats.kernel_masks += totals.masks_built;
    parts.stats.kernel_memo_hits += totals.memo_hits;
    parts.stats.entries_zeroed += totals.zeroed;
    totals.zeroed
}

/// One binary constraint over all arcs, in parallel (arc-owner workers).
/// O(1) P-RAM rounds, width O(n⁴).
pub fn apply_binary_par(net: &mut Network<'_>, c: &Constraint, stats: &mut PramStats) -> usize {
    debug_assert_eq!(c.arity, Arity::Binary);
    let width = pairwise_width(net);
    let zeroed = match net.eval {
        EvalStrategy::Kernel => apply_pairwise_kernel_par(net, c),
        EvalStrategy::Naive => {
            let parts = net.parts_mut();
            let slots = parts.slots;
            let sentence = parts.sentence;
            parts
                .arcs
                .par_iter_mut()
                .zip(parts.pairs.par_iter())
                .map(|(m, &(i, j, _))| {
                    let (si, sj) = (&slots[i], &slots[j]);
                    let mut count = 0;
                    for a in si.alive.iter_ones() {
                        let ba = si.binding(a);
                        for b in sj.alive.iter_ones() {
                            if m.get(a, b) && !c.check_pair(sentence, ba, sj.binding(b)) {
                                m.set(a, b, false);
                                count += 1;
                            }
                        }
                    }
                    count
                })
                .sum()
        }
    };
    stats.round(width.max(1));
    zeroed
}

/// A unary constraint applied pairwise with witness semantics (lexically
/// ambiguous sentences; see `cdg_core::propagate::apply_unary_pairwise`).
pub fn apply_unary_pairwise_par(
    net: &mut Network<'_>,
    c: &Constraint,
    stats: &mut PramStats,
) -> usize {
    debug_assert_eq!(c.arity, Arity::Unary);
    let zeroed = match net.eval {
        EvalStrategy::Kernel => apply_pairwise_kernel_par(net, c),
        EvalStrategy::Naive => {
            let parts = net.parts_mut();
            let slots = parts.slots;
            let sentence = parts.sentence;
            parts
                .arcs
                .par_iter_mut()
                .zip(parts.pairs.par_iter())
                .map(|(m, &(i, j, _))| {
                    let (si, sj) = (&slots[i], &slots[j]);
                    let mut count = 0;
                    for a in si.alive.iter_ones() {
                        let ba = si.binding(a);
                        for b in sj.alive.iter_ones() {
                            if !m.get(a, b) {
                                continue;
                            }
                            let bb = sj.binding(b);
                            if !c.check_unary_with_witness(sentence, ba, bb)
                                || !c.check_unary_with_witness(sentence, bb, ba)
                            {
                                m.set(a, b, false);
                                count += 1;
                            }
                        }
                    }
                    count
                })
                .sum()
        }
    };
    stats.round(1);
    zeroed
}

/// One simultaneous consistency-maintenance pass: the parallel analogue of
/// the paper's constant-time OR/AND support test. O(1) P-RAM rounds, width
/// O(n⁴). Returns values removed.
pub fn maintain_par(net: &mut Network<'_>, stats: &mut PramStats) -> usize {
    let _phase = obsv::span("maintain");
    let num = net.num_slots();
    let support_width: usize = net.total_alive() * num.saturating_sub(1);
    // Read-only support scan over (slot, value) in parallel.
    let doomed: Vec<(usize, usize)> = {
        let netref = &*net;
        // Column support tested against per-arc occupancy vectors (one
        // word-strided sweep per matrix) instead of per-value column scans.
        let occ: Vec<BitVec> = netref
            .arcs_raw()
            .par_iter()
            .map(|m| m.col_occupancy())
            .collect();
        let occ = &occ;
        (0..num)
            .into_par_iter()
            .flat_map_iter(|i| {
                let si: &RoleSlot = netref.slot(i);
                si.alive
                    .iter_ones()
                    .filter(move |&a| {
                        (0..num).any(|j| {
                            if j == i {
                                return false;
                            }
                            let supported = if i < j {
                                let (m, _) = netref.arc(i, j);
                                m.row_any(a)
                            } else {
                                occ[netref.arc_index(j, i)].get(a)
                            };
                            !supported
                        })
                    })
                    .map(move |a| (i, a))
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    stats.round(support_width.max(1));
    stats.maintain_passes += 1;
    remove_values_par(net, &doomed, stats);
    doomed.len()
}

/// The full parallel pipeline, mirroring `cdg_core::parse` phase for phase.
///
/// ```
/// use cdg_parallel::parse_pram;
/// use cdg_core::parser::ParseOptions;
/// use cdg_grammar::grammars::paper;
///
/// let grammar = paper::grammar();
/// let sentence = paper::example_sentence(&grammar);
/// let outcome = parse_pram(&grammar, &sentence, ParseOptions::default());
/// assert!(outcome.accepted());
/// // The P-RAM accounting: a handful of parallel steps, n⁴-scale width.
/// assert!(outcome.stats.steps < 60);
/// assert!(outcome.stats.max_width > 100);
/// ```
pub fn parse_pram<'g>(
    grammar: &'g Grammar,
    sentence: &Sentence,
    options: ParseOptions,
) -> PramOutcome<'g> {
    let mut stats = PramStats::default();
    // Role-value generation: one O(1) round of O(n²) processors. The host
    // builds the domains; the round accounting mirrors the model.
    let mut net = Network::build(grammar, sentence);
    net.eval = options.eval;
    stats.round(net.total_alive());

    let run_unary = |net: &mut Network<'g>, stats: &mut PramStats| {
        let _phase = obsv::span("unary_propagation");
        for c in grammar.unary_constraints() {
            let _c = obsv::span_with(|| format!("unary:{}", c.name));
            apply_unary_par(net, c, stats);
        }
    };
    if options.arcs_before_unary {
        net.init_arcs();
        stats.round(net.stats.arc_entries_initialized.max(1));
        run_unary(&mut net, &mut stats);
    } else {
        run_unary(&mut net, &mut stats);
        net.init_arcs();
        stats.round(net.stats.arc_entries_initialized.max(1));
    }
    {
        let _phase = obsv::span("binary_propagation");
        for c in grammar.binary_constraints() {
            let _c = obsv::span_with(|| format!("binary:{}", c.name));
            apply_binary_par(&mut net, c, &mut stats);
        }
        if sentence.has_lexical_ambiguity() {
            for c in grammar.unary_constraints() {
                let _c = obsv::span_with(|| format!("unary-pairwise:{}", c.name));
                apply_unary_pairwise_par(&mut net, c, &mut stats);
            }
        }
    }
    let mut passes = 0;
    let _filtering = obsv::span("filtering");
    match options.filter {
        FilterMode::None => {}
        FilterMode::Bounded(max) => {
            while passes < max {
                passes += 1;
                if maintain_par(&mut net, &mut stats) == 0 {
                    break;
                }
            }
        }
        FilterMode::Fixpoint => loop {
            passes += 1;
            if maintain_par(&mut net, &mut stats) == 0 {
                break;
            }
        },
    }
    drop(_filtering);
    PramOutcome {
        roles_nonempty: net.all_roles_nonempty(),
        stats,
        filter_passes: passes,
        network: net,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdg_grammar::grammars::{english, paper};

    fn options() -> ParseOptions {
        ParseOptions::default()
    }

    fn assert_equivalent(grammar: &Grammar, sentence: &Sentence) {
        let serial = cdg_core::parse(grammar, sentence, options());
        let par = parse_pram(grammar, sentence, options());
        assert_eq!(serial.roles_nonempty, par.roles_nonempty);
        for (a, b) in serial.network.slots().iter().zip(par.network.slots()) {
            assert_eq!(a.alive, b.alive, "alive sets diverge");
        }
        assert_eq!(serial.parses(100), par.parses(100));
    }

    #[test]
    fn equivalent_on_the_paper_example() {
        let g = paper::grammar();
        let s = paper::example_sentence(&g);
        assert_equivalent(&g, &s);
    }

    #[test]
    fn equivalent_on_english_suite() {
        let g = english::grammar();
        let lex = english::lexicon(&g);
        for text in [
            "the dog runs",
            "the dog runs in the park",
            "the big red dog sees a small cat",
            "program the runs",
            "the watch runs",
            "they often watch dogs near the table",
        ] {
            if let Ok(s) = lex.sentence(text) {
                assert_equivalent(&g, &s);
            }
        }
    }

    #[test]
    fn step_count_is_independent_of_sentence_length() {
        // The P-RAM promise: parallel steps are O(k + filtering passes),
        // not O(n). Compare step counts across lengths with filtering
        // bounded to a constant.
        let g = paper::grammar();
        let opts = ParseOptions {
            filter: FilterMode::Bounded(3),
            ..Default::default()
        };
        let steps: Vec<usize> = [3usize, 6, 9]
            .iter()
            .map(|&n| {
                let s = paper::cost_sweep_sentence(&g, n);
                parse_pram(&g, &s, opts).stats.steps
            })
            .collect();
        let spread = steps.iter().max().unwrap() - steps.iter().min().unwrap();
        // Steps may differ by a few removal rounds, never by O(n) factors.
        assert!(
            spread <= 4,
            "parallel steps should be nearly constant in n: {steps:?}"
        );
    }

    #[test]
    fn width_grows_with_sentence_length() {
        let g = paper::grammar();
        let w: Vec<usize> = [3usize, 6]
            .iter()
            .map(|&n| {
                let s = paper::cost_sweep_sentence(&g, n);
                parse_pram(&g, &s, options()).stats.max_width
            })
            .collect();
        assert!(w[1] > w[0] * 4, "width should grow ~n⁴: {w:?}");
    }

    #[test]
    fn parallel_incremental_constraints_match_serial() {
        let g = english::grammar();
        let lex = english::lexicon(&g);
        let s = lex.sentence("the dog runs in the park").unwrap();
        let pin = g
            .compile_extra_constraint(
                "pp-attaches-to-verb",
                "(if (eq (lab x) PP) (eq (cat (word (mod x))) verb))",
            )
            .unwrap();

        let mut serial = cdg_core::parse(&g, &s, options());
        serial.propagate_extra(std::slice::from_ref(&pin));

        let mut par = parse_pram(&g, &s, options());
        par.propagate_extra(std::slice::from_ref(&pin));

        assert_eq!(serial.parses(16), par.parses(16));
        for (a, b) in serial.network.slots().iter().zip(par.network.slots()) {
            assert_eq!(a.alive, b.alive);
        }
        assert_eq!(par.parses(16).len(), 1);
    }

    #[test]
    fn accepted_matches_serial_on_rejections() {
        let g = english::grammar();
        let lex = english::lexicon(&g);
        let s = lex.sentence("dog the runs").unwrap();
        let par = parse_pram(&g, &s, options());
        assert!(!par.accepted());
    }
}
