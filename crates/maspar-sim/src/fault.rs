//! Deterministic fault injection for the simulated MP-1.
//!
//! A real 16,384-PE array sees hardware faults: PEs die, router payloads
//! get corrupted in flight, and alpha particles flip bits in PE-local
//! memory. The MP-1's marketing leaned on its diagnostic hardware; a
//! simulator can go further and make faults *reproducible*. A [`FaultPlan`]
//! is a fixed, seeded schedule of faults:
//!
//! * [`Fault::DeadPe`] — a physical PE that never executes a broadcast
//!   instruction. Its local memory is frozen; scans and reductions skip it
//!   (it contributes the identity); the router cannot deliver to it.
//!   Dead PEs are dead from power-on: the damage is *persistent* and
//!   therefore invisible to time redundancy, which is why programs must
//!   probe for them (see [`crate::Machine::probe_pes`]).
//! * [`Fault::RouterCorrupt`] — the payload delivered to one physical PE
//!   by one specific communication instruction (gather, scatter, X-Net
//!   shift, or a scan's boundary deposit) is XORed with a mask. Transient:
//!   keyed to a single global instruction count, it fires at most once.
//! * [`Fault::MemoryFlip`] — one bit of the word a physical PE writes
//!   during one specific broadcast instruction is flipped. Also transient.
//!
//! Transient faults are keyed to the machine's *global instruction
//! counter* ([`crate::Machine::op_count`]), which only ever increases.
//! Re-executing a phase therefore replays it at fresh instruction counts,
//! past any fault that already fired — the property that makes
//! detect-and-retry recovery converge.
//!
//! Everything here is deterministic: [`FaultPlan::seeded`] expands a seed
//! through a SplitMix64 stream (inlined so this crate stays
//! dependency-free), and the same seed always yields the same plan.

use std::collections::BTreeSet;
use std::fmt;

/// One injected hardware fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Physical PE `phys` is dead from power-on.
    DeadPe { phys: usize },
    /// The payload delivered to `phys` by the communication instruction
    /// with global count `at_op` is XORed with `mask`.
    RouterCorrupt { at_op: u64, phys: usize, mask: u64 },
    /// Bit `bit` of the word `phys` writes during instruction `at_op` is
    /// flipped.
    MemoryFlip { at_op: u64, phys: usize, bit: u32 },
}

/// A deterministic schedule of injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    dead: BTreeSet<usize>,
}

/// The SplitMix64 step — inlined so `maspar-sim` needs no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (arming it still switches the machine onto the
    /// fault-checked execution path).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a dead physical PE.
    pub fn with_dead_pe(mut self, phys: usize) -> Self {
        self.dead.insert(phys);
        self.faults.push(Fault::DeadPe { phys });
        self
    }

    /// Add a transient router-payload corruption.
    pub fn with_router_corrupt(mut self, at_op: u64, phys: usize, mask: u64) -> Self {
        self.faults.push(Fault::RouterCorrupt { at_op, phys, mask });
        self
    }

    /// Add a transient single-bit memory flip.
    pub fn with_memory_flip(mut self, at_op: u64, phys: usize, bit: u32) -> Self {
        self.faults.push(Fault::MemoryFlip { at_op, phys, bit });
        self
    }

    /// Expand `seed` into a random mixture of faults over `phys_pes`
    /// physical PEs and the first `horizon_ops` instructions: up to 3 dead
    /// PEs and up to 4 each of router corruptions and memory flips. Same
    /// seed, same plan, always.
    pub fn seeded(seed: u64, phys_pes: usize, horizon_ops: u64) -> Self {
        assert!(phys_pes > 0, "a fault plan needs at least one physical PE");
        let horizon = horizon_ops.max(1);
        let mut s = seed;
        let mut plan = FaultPlan::new();
        let n_dead = splitmix64(&mut s) % 4; // 0..=3
        for _ in 0..n_dead {
            plan = plan.with_dead_pe(splitmix64(&mut s) as usize % phys_pes);
        }
        let n_router = splitmix64(&mut s) % 5; // 0..=4
        for _ in 0..n_router {
            let at_op = 1 + splitmix64(&mut s) % horizon;
            let phys = splitmix64(&mut s) as usize % phys_pes;
            let mask = splitmix64(&mut s) | 1; // never a no-op
            plan = plan.with_router_corrupt(at_op, phys, mask);
        }
        let n_flip = splitmix64(&mut s) % 5; // 0..=4
        for _ in 0..n_flip {
            let at_op = 1 + splitmix64(&mut s) % horizon;
            let phys = splitmix64(&mut s) as usize % phys_pes;
            let bit = (splitmix64(&mut s) % 64) as u32;
            plan = plan.with_memory_flip(at_op, phys, bit);
        }
        plan
    }

    /// Parse a CLI-style spec: either a bare integer seed, or
    /// comma-separated `key=value` pairs with keys `seed`, `dead`
    /// (dead PE id, repeatable), `router` (`op:phys:mask`), and `flip`
    /// (`op:phys:bit`). Examples: `42`, `seed=7`,
    /// `dead=3,router=120:5:255,flip=80:3:17`.
    pub fn parse_spec(spec: &str, phys_pes: usize, horizon_ops: u64) -> Result<Self, String> {
        if let Ok(seed) = spec.trim().parse::<u64>() {
            return Ok(FaultPlan::seeded(seed, phys_pes, horizon_ops));
        }
        let mut plan = FaultPlan::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let int = |v: &str| -> Result<u64, String> {
                v.parse::<u64>()
                    .map_err(|_| format!("`{v}` in fault spec `{part}` is not an integer"))
            };
            let in_range = |pe: usize| -> Result<usize, String> {
                if pe < phys_pes {
                    Ok(pe)
                } else {
                    Err(format!(
                        "fault spec `{part}` targets physical PE {pe}, but the array has \
                         {phys_pes} PEs (ids 0..={})",
                        phys_pes - 1
                    ))
                }
            };
            match key {
                "seed" => plan = FaultPlan::seeded(int(value)?, phys_pes, horizon_ops),
                "dead" => plan = plan.with_dead_pe(in_range(int(value)? as usize)?),
                "router" | "flip" => {
                    let fields: Vec<&str> = value.split(':').collect();
                    if fields.len() != 3 {
                        return Err(format!("`{key}` wants op:phys:value, got `{value}`"));
                    }
                    let (op, phys, v) = (
                        int(fields[0])?,
                        in_range(int(fields[1])? as usize)?,
                        int(fields[2])?,
                    );
                    plan = if key == "router" {
                        plan.with_router_corrupt(op, phys, v)
                    } else {
                        plan.with_memory_flip(op, phys, v as u32)
                    };
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Is physical PE `phys` dead?
    pub fn is_dead(&self, phys: usize) -> bool {
        self.dead.contains(&phys)
    }

    /// All dead physical PEs, ascending.
    pub fn dead_pes(&self) -> impl Iterator<Item = usize> + '_ {
        self.dead.iter().copied()
    }

    /// Router corruptions scheduled for instruction `op`.
    pub fn router_faults_at(&self, op: u64) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.faults.iter().filter_map(move |f| match *f {
            Fault::RouterCorrupt { at_op, phys, mask } if at_op == op => Some((phys, mask)),
            _ => None,
        })
    }

    /// Memory flips scheduled for instruction `op`.
    pub fn memory_faults_at(&self, op: u64) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.faults.iter().filter_map(move |f| match *f {
            Fault::MemoryFlip { at_op, phys, bit } if at_op == op => Some((phys, bit)),
            _ => None,
        })
    }

    /// Every scheduled fault.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn len(&self) -> usize {
        self.faults.len()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dead = self.dead.len();
        let transient = self.faults.len() - dead;
        write!(f, "{dead} dead PE(s), {transient} transient fault(s)")
    }
}

/// A machine word that injected faults can corrupt. Implemented for the
/// primitive types programs keep in PE-local memory; the blanket bounds on
/// the [`crate::Machine`] plural/router operations require it so the fault
/// machinery can reach into any destination plural.
pub trait FaultWord: Copy {
    /// Bits in the word (used to keep single-bit flips effective).
    const BITS: u32;
    /// XOR with (the low bits of) `mask`.
    fn fault_xor(self, mask: u64) -> Self;
    /// Flip one bit (`bit` is reduced modulo the width).
    fn fault_flip(self, bit: u32) -> Self {
        self.fault_xor(1u64 << (bit % Self::BITS))
    }
}

macro_rules! impl_fault_word {
    ($($t:ty),*) => {$(
        impl FaultWord for $t {
            const BITS: u32 = <$t>::BITS;
            fn fault_xor(self, mask: u64) -> Self {
                self ^ (mask as $t)
            }
        }
    )*};
}

impl_fault_word!(u8, u16, u32, u64, usize);

macro_rules! impl_fault_word_signed {
    ($($t:ty),*) => {$(
        impl FaultWord for $t {
            const BITS: u32 = <$t>::BITS;
            fn fault_xor(self, mask: u64) -> Self {
                self ^ (mask as $t)
            }
        }
    )*};
}

impl_fault_word_signed!(i8, i16, i32, i64, isize);

impl FaultWord for bool {
    const BITS: u32 = 1;
    fn fault_xor(self, mask: u64) -> Self {
        self ^ (mask & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 64, 200);
        let b = FaultPlan::seeded(42, 64, 200);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 64, 200);
        assert_ne!(a, c, "different seeds should (here) differ");
    }

    #[test]
    fn seeded_plans_respect_bounds() {
        for seed in 0..200 {
            let plan = FaultPlan::seeded(seed, 32, 100);
            assert!(plan.dead_pes().count() <= 3);
            for f in plan.faults() {
                match *f {
                    Fault::DeadPe { phys } => assert!(phys < 32),
                    Fault::RouterCorrupt { at_op, phys, mask } => {
                        assert!((1..=100).contains(&at_op));
                        assert!(phys < 32);
                        assert_ne!(mask, 0);
                    }
                    Fault::MemoryFlip { at_op, phys, bit } => {
                        assert!((1..=100).contains(&at_op));
                        assert!(phys < 32);
                        assert!(bit < 64);
                    }
                }
            }
        }
    }

    #[test]
    fn builders_record_faults() {
        let plan = FaultPlan::new()
            .with_dead_pe(7)
            .with_router_corrupt(10, 3, 0xFF)
            .with_memory_flip(11, 4, 5);
        assert_eq!(plan.len(), 3);
        assert!(plan.is_dead(7));
        assert!(!plan.is_dead(3));
        assert_eq!(
            plan.router_faults_at(10).collect::<Vec<_>>(),
            vec![(3, 0xFF)]
        );
        assert_eq!(plan.router_faults_at(9).count(), 0);
        assert_eq!(plan.memory_faults_at(11).collect::<Vec<_>>(), vec![(4, 5)]);
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(
            FaultPlan::parse_spec("42", 64, 100).unwrap(),
            FaultPlan::seeded(42, 64, 100)
        );
        assert_eq!(
            FaultPlan::parse_spec("seed=42", 64, 100).unwrap(),
            FaultPlan::seeded(42, 64, 100)
        );
        let plan = FaultPlan::parse_spec("dead=3,router=120:5:255,flip=80:3:17", 64, 100).unwrap();
        assert!(plan.is_dead(3));
        assert_eq!(
            plan.router_faults_at(120).collect::<Vec<_>>(),
            vec![(5, 255)]
        );
        assert_eq!(plan.memory_faults_at(80).collect::<Vec<_>>(), vec![(3, 17)]);
        assert!(FaultPlan::parse_spec("bogus", 64, 100).is_err());
        assert!(FaultPlan::parse_spec("router=1:2", 64, 100).is_err());
        assert!(FaultPlan::parse_spec("wat=1", 64, 100).is_err());
        // Out-of-range PE ids are errors, not silently inert faults.
        assert!(FaultPlan::parse_spec("dead=64", 64, 100).is_err());
        assert!(FaultPlan::parse_spec("router=10:64:255", 64, 100).is_err());
        assert!(FaultPlan::parse_spec("flip=10:999:1", 64, 100).is_err());
        assert!(FaultPlan::parse_spec("dead=63", 64, 100).is_ok());
    }

    #[test]
    fn fault_words_corrupt_and_flip() {
        assert_eq!(0b1010u64.fault_xor(0b0110), 0b1100);
        assert_eq!(0u32.fault_flip(3), 8);
        assert_eq!(0u8.fault_flip(9), 2); // bit 9 % 8 = 1
        assert!(false.fault_xor(1));
        assert!(!false.fault_xor(2)); // even mask leaves bools alone
        assert!(!true.fault_flip(0));
    }

    #[test]
    fn display_summarizes() {
        let plan = FaultPlan::new().with_dead_pe(1).with_memory_flip(5, 2, 3);
        assert_eq!(plan.to_string(), "1 dead PE(s), 1 transient fault(s)");
    }
}
