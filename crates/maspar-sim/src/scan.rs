//! Segment geometry for the scanOr/scanAnd primitives.

/// A partition of the virtual PE array into contiguous segments.
///
/// The MP-1's scan primitives operate within *segments*: runs of
/// consecutive PEs delimited by segment-boundary flags. PARSEC lays arc
/// elements out so that the bits to be ORed share a segment (Figure 12);
/// the scan deposits each segment's reduction at its boundary (first) PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMap {
    /// Start PE of each segment, ascending; segment `s` spans
    /// `starts[s] .. starts[s+1]` (or to `len` for the last).
    starts: Vec<usize>,
    /// Total PEs covered.
    len: usize,
}

impl SegmentMap {
    /// Build from explicit segment lengths (must all be nonzero).
    pub fn from_lengths(lengths: &[usize]) -> Self {
        assert!(
            !lengths.is_empty(),
            "a segment map needs at least one segment"
        );
        let mut starts = Vec::with_capacity(lengths.len());
        let mut at = 0;
        for &l in lengths {
            assert!(l > 0, "zero-length segment");
            starts.push(at);
            at += l;
        }
        SegmentMap { starts, len: at }
    }

    /// Uniform segments of `seg_len` covering `total` PEs exactly.
    pub fn uniform(total: usize, seg_len: usize) -> Self {
        assert!(
            seg_len > 0 && total % seg_len == 0,
            "uniform segments must tile exactly: {total} / {seg_len}"
        );
        SegmentMap {
            starts: (0..total / seg_len).map(|s| s * seg_len).collect(),
            len: total,
        }
    }

    /// One segment spanning everything (a global reduction).
    pub fn global(total: usize) -> Self {
        assert!(total > 0);
        SegmentMap {
            starts: vec![0],
            len: total,
        }
    }

    pub fn num_segments(&self) -> usize {
        self.starts.len()
    }

    /// Total PEs covered.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Start PE (boundary) of segment `s`.
    pub fn start_of(&self, s: usize) -> usize {
        self.starts[s]
    }

    /// Half-open PE range of segment `s`.
    pub fn range_of(&self, s: usize) -> std::ops::Range<usize> {
        let end = self.starts.get(s + 1).copied().unwrap_or(self.len);
        self.starts[s]..end
    }

    /// The segment containing `pe` (binary search).
    pub fn segment_of(&self, pe: usize) -> usize {
        assert!(
            pe < self.len,
            "PE {pe} outside segment map of {} PEs",
            self.len
        );
        match self.starts.binary_search(&pe) {
            Ok(s) => s,
            Err(next) => next - 1,
        }
    }

    /// Longest segment length (drives the scan's local pass count).
    pub fn max_segment_len(&self) -> usize {
        (0..self.num_segments())
            .map(|s| self.range_of(s).len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lengths_geometry() {
        let m = SegmentMap::from_lengths(&[3, 2, 4]);
        assert_eq!(m.num_segments(), 3);
        assert_eq!(m.len(), 9);
        assert_eq!(m.start_of(0), 0);
        assert_eq!(m.start_of(1), 3);
        assert_eq!(m.start_of(2), 5);
        assert_eq!(m.range_of(1), 3..5);
        assert_eq!(m.range_of(2), 5..9);
        assert_eq!(m.max_segment_len(), 4);
    }

    #[test]
    fn uniform_tiles() {
        let m = SegmentMap::uniform(12, 3);
        assert_eq!(m.num_segments(), 4);
        assert_eq!(m.range_of(3), 9..12);
    }

    #[test]
    #[should_panic(expected = "tile exactly")]
    fn uniform_must_divide() {
        SegmentMap::uniform(10, 3);
    }

    #[test]
    fn segment_of_lookup() {
        let m = SegmentMap::from_lengths(&[3, 2, 4]);
        assert_eq!(m.segment_of(0), 0);
        assert_eq!(m.segment_of(2), 0);
        assert_eq!(m.segment_of(3), 1);
        assert_eq!(m.segment_of(4), 1);
        assert_eq!(m.segment_of(5), 2);
        assert_eq!(m.segment_of(8), 2);
    }

    #[test]
    #[should_panic(expected = "outside segment map")]
    fn segment_of_out_of_range() {
        SegmentMap::from_lengths(&[2]).segment_of(2);
    }

    #[test]
    fn global_is_one_segment() {
        let m = SegmentMap::global(7);
        assert_eq!(m.num_segments(), 1);
        assert_eq!(m.range_of(0), 0..7);
        assert_eq!(m.segment_of(6), 0);
    }
}
