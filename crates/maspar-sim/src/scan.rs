//! Segment geometry for the scanOr/scanAnd primitives.

/// A segment's extent over the packed 64-PE-per-word representation:
/// the inclusive word range it touches plus the partial-word masks at
/// either end. Precomputed once per [`SegmentMap`] so the word-at-a-time
/// scans ([`crate::Machine::scan_or_bits`]) never re-derive bit geometry
/// in their inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SegSpan {
    pub first_word: usize,
    pub last_word: usize,
    /// Valid bits of `first_word` belonging to this segment.
    pub first_mask: u64,
    /// Valid bits of `last_word` belonging to this segment.
    pub last_mask: u64,
}

impl SegSpan {
    /// The segment's bit mask within word `w` (callers only pass words in
    /// `first_word..=last_word`).
    #[inline]
    pub(crate) fn mask_for(&self, w: usize) -> u64 {
        let mut mask = !0u64;
        if w == self.first_word {
            mask &= self.first_mask;
        }
        if w == self.last_word {
            mask &= self.last_mask;
        }
        mask
    }
}

fn span_for(start: usize, end: usize) -> SegSpan {
    debug_assert!(start < end);
    let (first_word, last_word) = (start / 64, (end - 1) / 64);
    SegSpan {
        first_word,
        last_word,
        first_mask: !0u64 << (start % 64),
        last_mask: !0u64 >> (63 - (end - 1) % 64),
    }
}

/// A partition of the virtual PE array into contiguous segments.
///
/// The MP-1's scan primitives operate within *segments*: runs of
/// consecutive PEs delimited by segment-boundary flags. PARSEC lays arc
/// elements out so that the bits to be ORed share a segment (Figure 12);
/// the scan deposits each segment's reduction at its boundary (first) PE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMap {
    /// Start PE of each segment, ascending; segment `s` spans
    /// `starts[s] .. starts[s+1]` (or to `len` for the last).
    starts: Vec<usize>,
    /// Total PEs covered.
    len: usize,
    /// Packed-word extent of each segment (same indexing as `starts`).
    spans: Vec<SegSpan>,
}

impl SegmentMap {
    fn with_starts(starts: Vec<usize>, len: usize) -> Self {
        let spans = starts
            .iter()
            .enumerate()
            .map(|(s, &start)| {
                let end = starts.get(s + 1).copied().unwrap_or(len);
                span_for(start, end)
            })
            .collect();
        SegmentMap { starts, len, spans }
    }

    /// Build from explicit segment lengths (must all be nonzero).
    pub fn from_lengths(lengths: &[usize]) -> Self {
        assert!(
            !lengths.is_empty(),
            "a segment map needs at least one segment"
        );
        let mut starts = Vec::with_capacity(lengths.len());
        let mut at = 0;
        for &l in lengths {
            assert!(l > 0, "zero-length segment");
            starts.push(at);
            at += l;
        }
        SegmentMap::with_starts(starts, at)
    }

    /// Uniform segments of `seg_len` covering `total` PEs exactly.
    pub fn uniform(total: usize, seg_len: usize) -> Self {
        assert!(
            seg_len > 0 && total % seg_len == 0,
            "uniform segments must tile exactly: {total} / {seg_len}"
        );
        SegmentMap::with_starts((0..total / seg_len).map(|s| s * seg_len).collect(), total)
    }

    /// One segment spanning everything (a global reduction).
    pub fn global(total: usize) -> Self {
        assert!(total > 0);
        SegmentMap::with_starts(vec![0], total)
    }

    /// Packed-word extent of segment `s`.
    pub(crate) fn span_of(&self, s: usize) -> SegSpan {
        self.spans[s]
    }

    pub fn num_segments(&self) -> usize {
        self.starts.len()
    }

    /// Total PEs covered.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Start PE (boundary) of segment `s`.
    pub fn start_of(&self, s: usize) -> usize {
        self.starts[s]
    }

    /// Half-open PE range of segment `s`.
    pub fn range_of(&self, s: usize) -> std::ops::Range<usize> {
        let end = self.starts.get(s + 1).copied().unwrap_or(self.len);
        self.starts[s]..end
    }

    /// The segment containing `pe` (binary search).
    pub fn segment_of(&self, pe: usize) -> usize {
        assert!(
            pe < self.len,
            "PE {pe} outside segment map of {} PEs",
            self.len
        );
        match self.starts.binary_search(&pe) {
            Ok(s) => s,
            Err(next) => next - 1,
        }
    }

    /// Longest segment length (drives the scan's local pass count).
    pub fn max_segment_len(&self) -> usize {
        (0..self.num_segments())
            .map(|s| self.range_of(s).len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lengths_geometry() {
        let m = SegmentMap::from_lengths(&[3, 2, 4]);
        assert_eq!(m.num_segments(), 3);
        assert_eq!(m.len(), 9);
        assert_eq!(m.start_of(0), 0);
        assert_eq!(m.start_of(1), 3);
        assert_eq!(m.start_of(2), 5);
        assert_eq!(m.range_of(1), 3..5);
        assert_eq!(m.range_of(2), 5..9);
        assert_eq!(m.max_segment_len(), 4);
    }

    #[test]
    fn uniform_tiles() {
        let m = SegmentMap::uniform(12, 3);
        assert_eq!(m.num_segments(), 4);
        assert_eq!(m.range_of(3), 9..12);
    }

    #[test]
    #[should_panic(expected = "tile exactly")]
    fn uniform_must_divide() {
        SegmentMap::uniform(10, 3);
    }

    #[test]
    fn segment_of_lookup() {
        let m = SegmentMap::from_lengths(&[3, 2, 4]);
        assert_eq!(m.segment_of(0), 0);
        assert_eq!(m.segment_of(2), 0);
        assert_eq!(m.segment_of(3), 1);
        assert_eq!(m.segment_of(4), 1);
        assert_eq!(m.segment_of(5), 2);
        assert_eq!(m.segment_of(8), 2);
    }

    #[test]
    #[should_panic(expected = "outside segment map")]
    fn segment_of_out_of_range() {
        SegmentMap::from_lengths(&[2]).segment_of(2);
    }

    #[test]
    fn global_is_one_segment() {
        let m = SegmentMap::global(7);
        assert_eq!(m.num_segments(), 1);
        assert_eq!(m.range_of(0), 0..7);
        assert_eq!(m.segment_of(6), 0);
    }

    #[test]
    fn spans_mirror_pe_ranges() {
        // Segments crossing word boundaries, within one word, and exactly
        // word-aligned must all reproduce their PE range bit-for-bit.
        for map in [
            SegmentMap::from_lengths(&[3, 60, 5, 130]),
            SegmentMap::uniform(192, 64),
            SegmentMap::uniform(90, 10),
            SegmentMap::global(7),
            SegmentMap::global(200),
        ] {
            for s in 0..map.num_segments() {
                let span = map.span_of(s);
                let range = map.range_of(s);
                assert_eq!(span.first_word, range.start / 64);
                assert_eq!(span.last_word, (range.end - 1) / 64);
                for w in span.first_word..=span.last_word {
                    let mask = span.mask_for(w);
                    for b in 0..64 {
                        let pe = w * 64 + b;
                        assert_eq!(
                            mask >> b & 1 == 1,
                            range.contains(&pe),
                            "segment {s}, word {w}, bit {b}"
                        );
                    }
                }
            }
        }
    }
}
