//! A deterministic simulator of the MasPar MP-1.
//!
//! The MP-1 (1990) was a massively parallel SIMD computer: up to 16,384
//! 4-bit processing elements (PEs), each with 16 KB of local memory, driven
//! by an Array Control Unit (ACU) that broadcasts one instruction stream to
//! the whole array, with a *global router* providing arbitrary-permutation
//! communication and the `scanOr()`/`scanAnd()` segmented-scan primitives
//! the paper's parsing algorithm is built on. The hardware no longer
//! exists; this crate is the substitution substrate (see DESIGN.md): it
//! executes MP-1-style programs faithfully and *counts* what the machine
//! would have done, so the paper's step-complexity claims — O(k + log n)
//! parsing, the ⌈virtual PEs / 16384⌉ virtualization staircase — are
//! reproduced structurally, and a calibrated cost model converts the counts
//! into estimated MP-1 wall time (anchored to the paper's reported 0.15 s
//! example-sentence parse).
//!
//! Programming model (mirroring MPL, MasPar's C extension):
//!
//! * a [`Machine`] owns the PE array state: virtual PE count, the activity
//!   set (which PEs execute the current broadcast instruction), and the
//!   operation counters;
//! * [`Plural<T>`] is a *plural* value — one `T` per virtual PE, living in
//!   simulated PE-local memory (allocation is charged against the 16 KB
//!   per-PE budget, scaled by the virtualization factor);
//! * plural operations ([`Machine::par_map`] and friends) execute one
//!   broadcast instruction across all *active* PEs — on the host they run
//!   data-parallel under rayon, which is safe because each PE touches only
//!   its own slot;
//! * [`Machine::with_activity`] implements MPL's plural `if`: it narrows
//!   the activity set for the duration of a closure (PEs where the
//!   condition is false simply sit out the broadcast instructions);
//! * segmented [`Machine::scan_or`]/[`Machine::scan_and`] reduce within
//!   segments and deposit the result at each segment's boundary PE,
//!   costing ⌈log₂ #PE⌉ router passes — the paper's logarithmic primitive;
//! * [`Machine::gather`] is the global router: every active PE fetches a
//!   value from an arbitrary source PE in one routed operation.
//!
//! Everything is deterministic: no randomness, no dependence on rayon's
//! scheduling (each PE writes only its own slot; reductions are
//! order-independent).
//!
//! # Fault injection
//!
//! A real 16,384-PE array fails in parts, not as a whole. The [`fault`]
//! module provides a seeded, deterministic [`FaultPlan`] — dead PEs,
//! transient router-payload corruption, PE-memory bit flips — that a
//! [`Machine`] can arm ([`Machine::arm_faults`]); every injected event is
//! counted in [`MachineStats`], and programs detect and recover using
//! [`Machine::probe_pes`] / [`Machine::retire_pes`] plus their own
//! redundant execution (see `parsec-maspar`'s checked engine). With no
//! plan armed the simulator's behaviour and costs are bit-identical to
//! the fault-free original.

pub mod bits;
pub mod fault;
pub mod machine;
pub mod plural;
pub mod scan;
pub mod stats;
pub mod xnet;

pub use bits::PluralBits;
pub use fault::{Fault, FaultPlan, FaultWord};
pub use machine::{Machine, MachineConfig, TraceEntry};
pub use plural::Plural;
pub use scan::SegmentMap;
pub use stats::{CostModel, MachineStats};
pub use xnet::Edge;
