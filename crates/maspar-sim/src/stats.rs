//! Operation counting and the calibrated MP-1 cost model.

/// Cost weights converting counted operations into estimated MP-1 cycles.
///
/// The MP-1's PEs are 4-bit ALUs clocked at ~12.5 MHz; a 32-bit plural
/// operation takes on the order of tens of cycles, and router traffic is
/// substantially more expensive than local compute. The default weights
/// are *calibrated against the paper's own measurements* rather than
/// datasheet arithmetic: the paper reports ≈10 ms to propagate one
/// constraint on a ≤7-word network, ≈0.15 s to parse the 3-word example,
/// and 0.45 s for a 10-word sentence (3× — the virtualization staircase).
/// With these weights the simulated PARSEC run lands on those numbers; see
/// `parsec-maspar`'s calibration tests and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// PE clock, Hz.
    pub clock_hz: f64,
    /// Cycles for one broadcast plural instruction slice (one virtual-PE
    /// layer of one plural op).
    pub cycles_per_plural_slice: f64,
    /// Cycles per router pass of a scan (a scan costs ⌈log₂ #phys PE⌉
    /// passes plus one local slice per virtualization layer).
    pub cycles_per_scan_pass: f64,
    /// Cycles per routed gather/scatter slice.
    pub cycles_per_router_slice: f64,
    /// Cycles per X-Net hop slice (nearest-neighbour links are the
    /// cheapest communication on the machine).
    pub cycles_per_xnet_hop: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            clock_hz: 12.5e6,
            // Calibrated against the paper's time trials (see
            // parsec-maspar/tests/timing.rs). One "plural op" in this
            // simulator is a fused kernel — on the real machine it expands
            // to hundreds of broadcast instructions interpreting the
            // constraint on 4-bit ALUs, so 25k cycles (2 ms) per kernel
            // slice is the granularity the paper's ~10 ms/constraint
            // implies.
            cycles_per_plural_slice: 25_000.0,
            cycles_per_scan_pass: 2_000.0,
            cycles_per_router_slice: 10_000.0,
            cycles_per_xnet_hop: 200.0,
        }
    }
}

/// Counts of the machine operations a program performed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MachineStats {
    /// Broadcast plural instructions (one per `par_map`-style call).
    pub plural_ops: u64,
    /// Plural instruction *slices*: plural ops × virtualization factor.
    pub plural_slices: u64,
    /// Scan invocations (scanOr/scanAnd).
    pub scan_calls: u64,
    /// Router passes spent in scans (⌈log₂ #phys⌉ each, × virt layers for
    /// the local pre-reduction).
    pub scan_passes: u64,
    /// Routed gather/scatter operations.
    pub router_ops: u64,
    /// X-Net nearest-neighbour hops (one per PE-distance of each shift).
    pub xnet_shifts: u64,
    /// Router slices (router ops × virtualization factor).
    pub router_slices: u64,
    /// Peak simulated PE-local memory in use, bytes per *physical* PE.
    pub peak_pe_memory_bytes: usize,
    /// Broadcast-instruction slots skipped because the virtual PE's
    /// physical home is dead (fault injection only).
    pub dead_pe_skips: u64,
    /// Router/scan payloads corrupted by an injected transient fault.
    pub router_corruptions: u64,
    /// Freshly written PE-memory words corrupted by an injected bit flip.
    pub memory_flips: u64,
    /// Router sends/fetches dropped because a (corrupted) index plural
    /// pointed out of range. Only possible with faults armed; fault-free
    /// programs assert instead.
    pub oob_routes: u64,
}

impl MachineStats {
    /// Estimated MP-1 cycles under `cost`.
    pub fn cycles(&self, cost: &CostModel) -> f64 {
        self.plural_slices as f64 * cost.cycles_per_plural_slice
            + self.scan_passes as f64 * cost.cycles_per_scan_pass
            + self.router_slices as f64 * cost.cycles_per_router_slice
            + self.xnet_shifts as f64 * cost.cycles_per_xnet_hop
    }

    /// Estimated MP-1 wall time in seconds under `cost`.
    pub fn estimated_seconds(&self, cost: &CostModel) -> f64 {
        self.cycles(cost) / cost.clock_hz
    }

    /// Difference of two snapshots (for per-phase attribution).
    pub fn delta_since(&self, earlier: &MachineStats) -> MachineStats {
        MachineStats {
            plural_ops: self.plural_ops - earlier.plural_ops,
            plural_slices: self.plural_slices - earlier.plural_slices,
            scan_calls: self.scan_calls - earlier.scan_calls,
            scan_passes: self.scan_passes - earlier.scan_passes,
            router_ops: self.router_ops - earlier.router_ops,
            xnet_shifts: self.xnet_shifts - earlier.xnet_shifts,
            router_slices: self.router_slices - earlier.router_slices,
            peak_pe_memory_bytes: self.peak_pe_memory_bytes,
            dead_pe_skips: self.dead_pe_skips - earlier.dead_pe_skips,
            router_corruptions: self.router_corruptions - earlier.router_corruptions,
            memory_flips: self.memory_flips - earlier.memory_flips,
            oob_routes: self.oob_routes - earlier.oob_routes,
        }
    }

    /// Total injected-fault events observed (for recovery reports).
    pub fn fault_events(&self) -> u64 {
        self.dead_pe_skips + self.router_corruptions + self.memory_flips + self.oob_routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_accounting_is_linear() {
        let cost = CostModel {
            clock_hz: 1e6,
            cycles_per_plural_slice: 10.0,
            cycles_per_scan_pass: 5.0,
            cycles_per_router_slice: 20.0,
            cycles_per_xnet_hop: 1.0,
        };
        let stats = MachineStats {
            plural_ops: 3,
            plural_slices: 6,
            scan_calls: 2,
            scan_passes: 4,
            router_ops: 1,
            router_slices: 2,
            xnet_shifts: 7,
            peak_pe_memory_bytes: 0,
            ..Default::default()
        };
        assert_eq!(
            stats.cycles(&cost),
            6.0 * 10.0 + 4.0 * 5.0 + 2.0 * 20.0 + 7.0
        );
        assert!((stats.estimated_seconds(&cost) - 127.0 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts() {
        let a = MachineStats {
            plural_ops: 10,
            plural_slices: 20,
            scan_calls: 4,
            scan_passes: 8,
            router_ops: 2,
            router_slices: 4,
            xnet_shifts: 9,
            peak_pe_memory_bytes: 100,
            dead_pe_skips: 5,
            ..Default::default()
        };
        let b = MachineStats {
            plural_ops: 4,
            plural_slices: 8,
            scan_calls: 1,
            scan_passes: 2,
            router_ops: 1,
            router_slices: 2,
            xnet_shifts: 4,
            peak_pe_memory_bytes: 100,
            dead_pe_skips: 2,
            ..Default::default()
        };
        let d = a.delta_since(&b);
        assert_eq!(d.plural_ops, 6);
        assert_eq!(d.scan_passes, 6);
        assert_eq!(d.router_slices, 2);
        assert_eq!(d.xnet_shifts, 5);
        assert_eq!(d.dead_pe_skips, 3);
        assert_eq!(d.fault_events(), 3);
    }

    #[test]
    fn default_model_is_mp1_shaped() {
        let c = CostModel::default();
        assert_eq!(c.clock_hz, 12.5e6);
        // A plural kernel is the coarsest unit (hundreds of broadcast
        // instructions); a single scan router pass is the cheapest.
        assert!(c.cycles_per_plural_slice > c.cycles_per_router_slice);
        assert!(c.cycles_per_router_slice > c.cycles_per_scan_pass);
    }
}
