//! The X-Net: the MP-1's nearest-neighbour mesh network.
//!
//! Besides the global router, the MP-1 connected its PEs in a 2-D torus
//! with 8-neighbour ("X") links; MPL exposed this as `xnet` shifts. The
//! paper's algorithm only needs the router's scans, but the X-Net is part
//! of the machine, so the simulator provides it: shift operations along
//! the PE ordering (with configurable wraparound), plus a tree reduction
//! built from shifts — an alternative O(log n) reduction path whose
//! equivalence with the router scans is property-tested.
//!
//! Costs: one X-Net shift is far cheaper than a router pass on the real
//! machine; it is charged as a plural operation plus an `xnet_shifts`
//! count (reported separately in [`crate::MachineStats`]).

use crate::machine::Machine;
use crate::plural::Plural;

/// Edge behaviour of a shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Wrap around (torus links).
    Wrap,
    /// PEs shifting in from outside receive `fill` (the value stays put).
    Fill,
}

impl Machine {
    /// Shift a plural by `offset` PEs (positive = toward higher ids):
    /// `dst[pe] = src[pe - offset]`, with edges per `edge`. Active PEs
    /// receive; inactive PEs keep their old `dst`.
    pub fn xnet_shift<T: Copy + Send + Sync + crate::fault::FaultWord>(
        &mut self,
        src: &Plural<T>,
        offset: isize,
        edge: Edge,
        fill: T,
        dst: &mut Plural<T>,
    ) {
        if self.is_ghost() {
            self.charge_xnet(offset.unsigned_abs());
            return;
        }
        assert_eq!(src.len(), self.n_virt(), "plural size mismatch");
        assert_eq!(dst.len(), self.n_virt(), "plural size mismatch");
        let op = self.charge_xnet(offset.unsigned_abs());
        self.count_dead_skips();
        let n = self.n_virt() as isize;
        let s = src.as_slice();
        // Dead PEs neither receive (their memory is frozen) nor matter as
        // senders here: a dead sender's stale word travels like any other.
        let live: Vec<bool> = (0..self.n_virt()).map(|pe| self.is_live(pe)).collect();
        use rayon::prelude::*;
        dst.as_mut_slice()
            .par_iter_mut()
            .enumerate()
            .for_each(|(pe, slot)| {
                if !live[pe] {
                    return;
                }
                let from = pe as isize - offset;
                *slot = if (0..n).contains(&from) {
                    s[from as usize]
                } else {
                    match edge {
                        Edge::Wrap => s[from.rem_euclid(n) as usize],
                        Edge::Fill => fill,
                    }
                };
            });
        self.apply_router_corruption(op, dst.as_mut_slice());
    }

    /// [`Machine::xnet_shift`] for packed boolean plurals: identical
    /// charging and fault behaviour, but the payload travels as bits.
    pub fn xnet_shift_bits(
        &mut self,
        src: &crate::bits::PluralBits,
        offset: isize,
        edge: Edge,
        fill: bool,
        dst: &mut crate::bits::PluralBits,
    ) {
        if self.is_ghost() {
            self.charge_xnet(offset.unsigned_abs());
            return;
        }
        assert_eq!(src.len(), self.n_virt(), "plural size mismatch");
        assert_eq!(dst.len(), self.n_virt(), "plural size mismatch");
        let op = self.charge_xnet(offset.unsigned_abs());
        self.count_dead_skips();
        let n = self.n_virt() as isize;
        for pe in 0..self.n_virt() {
            if !self.is_live(pe) {
                continue;
            }
            let from = pe as isize - offset;
            let v = if (0..n).contains(&from) {
                src.get(from as usize)
            } else {
                match edge {
                    Edge::Wrap => src.get(from.rem_euclid(n) as usize),
                    Edge::Fill => fill,
                }
            };
            dst.set(pe, v);
        }
        self.apply_router_corruption_bits(op, dst);
    }

    /// Global OR implemented as a shift-and-fold tree over the X-Net —
    /// ⌈log₂ n⌉ shift rounds, no router involvement. Semantically equal
    /// to [`Machine::reduce_or`] over fully active arrays (equivalence is
    /// property-tested); provided to let programs trade router passes for
    /// X-Net hops.
    pub fn xnet_reduce_or(&mut self, p: &Plural<bool>) -> bool {
        if !self.is_ghost() {
            assert_eq!(p.len(), self.n_virt(), "plural size mismatch");
        }
        let mut acc = self.alloc(false);
        self.par_zip(&mut acc, p, |_, a, &v| *a = v);
        let mut shifted = self.alloc(false);
        let mut stride = 1usize;
        while stride < self.n_virt() {
            self.xnet_shift(&acc, -(stride as isize), Edge::Fill, false, &mut shifted);
            self.par_zip(&mut acc, &shifted, |_, a, &s| *a |= s);
            stride *= 2;
        }
        let result = !self.is_ghost() && *acc.get(0);
        self.free(acc);
        self.free(shifted);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_fill_and_wrap() {
        let mut m = Machine::mp1(5);
        let src = m.par_init(0u32, |pe| pe as u32 + 1); // 1 2 3 4 5
        let mut dst = m.alloc(0u32);
        m.xnet_shift(&src, 2, Edge::Fill, 99, &mut dst);
        assert_eq!(dst.as_slice(), &[99, 99, 1, 2, 3]);
        m.xnet_shift(&src, 2, Edge::Wrap, 0, &mut dst);
        assert_eq!(dst.as_slice(), &[4, 5, 1, 2, 3]);
        m.xnet_shift(&src, -1, Edge::Wrap, 0, &mut dst);
        assert_eq!(dst.as_slice(), &[2, 3, 4, 5, 1]);
        m.xnet_shift(&src, 0, Edge::Fill, 0, &mut dst);
        assert_eq!(dst.as_slice(), src.as_slice());
    }

    #[test]
    fn shift_respects_activity() {
        let mut m = Machine::mp1(4);
        let src = m.par_init(0u32, |pe| pe as u32 + 1);
        let mut dst = m.alloc(7u32);
        let mask = m.par_init(false, |pe| pe % 2 == 0);
        m.with_activity(&mask, |m| {
            m.xnet_shift(&src, 1, Edge::Fill, 0, &mut dst);
        });
        // Only PEs 0 and 2 received; 1 and 3 keep the old value.
        assert_eq!(dst.as_slice(), &[0, 7, 2, 7]);
    }

    #[test]
    fn xnet_reduction_matches_router_reduction() {
        for n in [1usize, 2, 3, 7, 16, 33] {
            for hot in 0..n.min(5) {
                let mut m = Machine::mp1(n);
                let p = m.par_init(false, |pe| pe == hot * 7 % n);
                let via_router = m.reduce_or(&p);
                let via_xnet = m.xnet_reduce_or(&p);
                assert_eq!(via_router, via_xnet, "n={n} hot={hot}");
            }
            let mut m = Machine::mp1(n);
            let p = m.alloc(false);
            assert!(!m.xnet_reduce_or(&p));
        }
    }

    #[test]
    fn packed_shift_matches_scalar() {
        for n in [1usize, 5, 64, 65, 130] {
            for (offset, edge) in [
                (0isize, Edge::Fill),
                (3, Edge::Fill),
                (-2, Edge::Fill),
                (3, Edge::Wrap),
                (-7, Edge::Wrap),
            ] {
                let mut sm = Machine::mp1(n);
                let mut pm = Machine::mp1(n);
                let src_s = sm.par_init(false, |pe| pe % 3 == 0);
                let mut dst_s = sm.alloc(true);
                sm.xnet_shift(&src_s, offset, edge, false, &mut dst_s);
                let src_p = pm.par_init_bits(false, |pe| pe % 3 == 0);
                let mut dst_p = pm.alloc_bits(true);
                pm.xnet_shift_bits(&src_p, offset, edge, false, &mut dst_p);
                assert_eq!(
                    dst_p.to_bools(),
                    dst_s.as_slice().to_vec(),
                    "n={n} offset={offset} edge={edge:?}"
                );
                assert_eq!(sm.stats, pm.stats);
            }
        }
    }

    #[test]
    fn xnet_cost_is_counted() {
        let mut m = Machine::mp1(8);
        let src = m.alloc(false);
        let mut dst = m.alloc(false);
        let before = m.stats.xnet_shifts;
        m.xnet_shift(&src, 3, Edge::Fill, false, &mut dst);
        assert_eq!(m.stats.xnet_shifts - before, 3);
        m.xnet_shift(&src, -2, Edge::Wrap, false, &mut dst);
        assert_eq!(m.stats.xnet_shifts - before, 5);
    }
}
