//! The Machine: PE array, ACU activity control, plural operations, scans,
//! and the global router.

use crate::plural::Plural;
use crate::scan::SegmentMap;
use crate::stats::{CostModel, MachineStats};
use rayon::prelude::*;

/// Static machine parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Physical PEs (the full MP-1: 16,384).
    pub phys_pes: usize,
    /// PE-local memory, bytes (MP-1: 16 KB).
    pub pe_memory_bytes: usize,
    /// Cost weights for the time estimate.
    pub cost: CostModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            phys_pes: 16_384,
            pe_memory_bytes: 16 * 1024,
            cost: CostModel::default(),
        }
    }
}

/// The simulated machine, sized for one program's virtual PE count.
///
/// When a program needs more virtual PEs than the machine has physical
/// ones, every broadcast instruction is executed ⌈virt/phys⌉ times — the
/// paper's processor virtualization (design decision 6), and the origin of
/// the 0.15 s → 0.45 s staircase in its time trials.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    n_virt: usize,
    virt_factor: u64,
    /// Activity flags per virtual PE; the stack implements MPL's plural if.
    enabled: Vec<bool>,
    activity_stack: Vec<Vec<bool>>,
    /// Simulated PE-local memory in use (bytes per physical PE).
    pe_memory_used: usize,
    /// Optional instruction trace (the paper singles out the MP-1's
    /// "extensive debugging support"; this is ours).
    trace: Option<Vec<TraceEntry>>,
    pub stats: MachineStats,
}

/// One traced machine operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Operation kind: `plural`, `scan_or`, `scan_and`, `scan_add`,
    /// `reduce`, `gather`, `scatter`, `xnet`, `activity`.
    pub op: &'static str,
    /// PEs active when the operation was broadcast.
    pub active: usize,
}

impl Machine {
    /// A machine executing a program of `n_virt` virtual PEs.
    ///
    /// ```
    /// use maspar_sim::{Machine, SegmentMap};
    ///
    /// // 8 virtual PEs; each computes its id, then a segmented scanOr
    /// // reduces each half to its boundary PE.
    /// let mut m = Machine::mp1(8);
    /// let flags = m.par_init(false, |pe| pe == 6);
    /// let segs = SegmentMap::uniform(8, 4);
    /// let reduced = m.scan_or(&flags, &segs);
    /// assert!(!reduced.get(0));     // first half: no flag
    /// assert!(*reduced.get(4));     // second half: PE 6 flagged
    /// assert_eq!(m.stats.scan_calls, 1);
    /// ```
    pub fn new(config: MachineConfig, n_virt: usize) -> Self {
        assert!(n_virt > 0, "a program needs at least one virtual PE");
        assert!(config.phys_pes > 0);
        let virt_factor = n_virt.div_ceil(config.phys_pes) as u64;
        Machine {
            config,
            n_virt,
            virt_factor,
            enabled: vec![true; n_virt],
            activity_stack: Vec::new(),
            pe_memory_used: 0,
            trace: None,
            stats: MachineStats::default(),
        }
    }

    /// Full-size MP-1 with default cost model.
    pub fn mp1(n_virt: usize) -> Self {
        Machine::new(MachineConfig::default(), n_virt)
    }

    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    pub fn n_virt(&self) -> usize {
        self.n_virt
    }

    /// ⌈virtual PEs / physical PEs⌉ — the paper's virtualization multiplier.
    pub fn virt_factor(&self) -> u64 {
        self.virt_factor
    }

    /// PEs currently executing broadcast instructions.
    pub fn active_count(&self) -> usize {
        self.enabled.iter().filter(|&&e| e).count()
    }

    pub fn is_enabled(&self, pe: usize) -> bool {
        self.enabled[pe]
    }

    /// Estimated MP-1 seconds for everything executed so far.
    pub fn estimated_seconds(&self) -> f64 {
        self.stats.estimated_seconds(&self.config.cost)
    }

    /// Turn on instruction tracing; each subsequent operation records its
    /// kind and the active PE count.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The trace so far (empty when tracing is off).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    fn record(&mut self, op: &'static str) {
        if self.trace.is_some() {
            let active = self.active_count();
            self.trace.as_mut().expect("checked above").push(TraceEntry { op, active });
        }
    }

    /// Permanently disable specific PEs (used for layout diagonals and for
    /// failure-injection tests). Applies to the *current* activity frame
    /// and, by construction, everything nested within it.
    pub fn disable_pes(&mut self, pes: &[usize]) {
        for &pe in pes {
            self.enabled[pe] = false;
        }
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// Allocate a plural value, one `T` per virtual PE, charged against the
    /// 16 KB-per-PE budget (each physical PE holds `virt_factor` layers).
    pub fn alloc<T: Clone + Send + Sync>(&mut self, init: T) -> Plural<T> {
        let per_phys = std::mem::size_of::<T>() * self.virt_factor as usize;
        self.pe_memory_used += per_phys;
        assert!(
            self.pe_memory_used <= self.config.pe_memory_bytes,
            "PE-local memory exhausted: {} of {} bytes (the MP-1 had 16 KB per PE)",
            self.pe_memory_used,
            self.config.pe_memory_bytes
        );
        self.stats.peak_pe_memory_bytes = self.stats.peak_pe_memory_bytes.max(self.pe_memory_used);
        Plural::from_vec(vec![init; self.n_virt])
    }

    /// Release a plural's memory (host keeps the data; the budget shrinks).
    pub fn free<T>(&mut self, plural: Plural<T>) {
        let per_phys = std::mem::size_of::<T>() * self.virt_factor as usize;
        self.pe_memory_used = self.pe_memory_used.saturating_sub(per_phys);
        drop(plural);
    }

    // ------------------------------------------------------------------
    // Broadcast plural instructions
    // ------------------------------------------------------------------

    fn charge_plural_op(&mut self) {
        self.record("plural");
        self.stats.plural_ops += 1;
        self.stats.plural_slices += self.virt_factor;
    }

    /// One broadcast instruction: every active PE updates its slot of `p`
    /// from its PE id. Runs data-parallel on the host.
    pub fn par_map<T: Send>(&mut self, p: &mut Plural<T>, f: impl Fn(usize, &mut T) + Sync) {
        assert_eq!(p.len(), self.n_virt, "plural size mismatch");
        self.charge_plural_op();
        let enabled = &self.enabled;
        p.as_mut_slice()
            .par_iter_mut()
            .enumerate()
            .for_each(|(pe, slot)| {
                if enabled[pe] {
                    f(pe, slot);
                }
            });
    }

    /// One broadcast instruction reading a second plural: `dst[pe] =
    /// f(pe, dst[pe], src[pe])` on active PEs.
    pub fn par_zip<T: Send, U: Sync>(
        &mut self,
        dst: &mut Plural<T>,
        src: &Plural<U>,
        f: impl Fn(usize, &mut T, &U) + Sync,
    ) {
        assert_eq!(dst.len(), self.n_virt, "plural size mismatch");
        assert_eq!(src.len(), self.n_virt, "plural size mismatch");
        self.charge_plural_op();
        let enabled = &self.enabled;
        let src = src.as_slice();
        dst.as_mut_slice()
            .par_iter_mut()
            .enumerate()
            .for_each(|(pe, slot)| {
                if enabled[pe] {
                    f(pe, slot, &src[pe]);
                }
            });
    }

    /// One broadcast instruction reading two plurals: `dst[pe] =
    /// f(pe, dst[pe], a[pe], b[pe])` on active PEs.
    pub fn par_zip2<T: Send, U: Sync, V: Sync>(
        &mut self,
        dst: &mut Plural<T>,
        a: &Plural<U>,
        b: &Plural<V>,
        f: impl Fn(usize, &mut T, &U, &V) + Sync,
    ) {
        assert_eq!(dst.len(), self.n_virt, "plural size mismatch");
        assert_eq!(a.len(), self.n_virt, "plural size mismatch");
        assert_eq!(b.len(), self.n_virt, "plural size mismatch");
        self.charge_plural_op();
        let enabled = &self.enabled;
        let a = a.as_slice();
        let b = b.as_slice();
        dst.as_mut_slice()
            .par_iter_mut()
            .enumerate()
            .for_each(|(pe, slot)| {
                if enabled[pe] {
                    f(pe, slot, &a[pe], &b[pe]);
                }
            });
    }

    /// Build a fresh plural from PE ids in one instruction (active PEs run
    /// `f`; inactive PEs hold `fill`).
    pub fn par_init<T: Clone + Send + Sync>(
        &mut self,
        fill: T,
        f: impl Fn(usize) -> T + Sync,
    ) -> Plural<T> {
        let mut p = self.alloc(fill);
        self.par_map(&mut p, |pe, slot| *slot = f(pe));
        p
    }

    // ------------------------------------------------------------------
    // Activity control (MPL plural if)
    // ------------------------------------------------------------------

    /// Run `body` with activity narrowed to PEs where `mask` holds (and
    /// that were already active). Restores the previous activity set after.
    pub fn with_activity<R>(
        &mut self,
        mask: &Plural<bool>,
        body: impl FnOnce(&mut Machine) -> R,
    ) -> R {
        assert_eq!(mask.len(), self.n_virt, "mask size mismatch");
        let saved = self.enabled.clone();
        self.activity_stack.push(saved);
        let mask = mask.as_slice();
        for (pe, e) in self.enabled.iter_mut().enumerate() {
            *e = *e && mask[pe];
        }
        // Narrowing activity is itself one broadcast test.
        self.charge_plural_op();
        let result = body(self);
        self.enabled = self.activity_stack.pop().expect("activity stack underflow");
        result
    }

    // ------------------------------------------------------------------
    // Reductions and scans
    // ------------------------------------------------------------------

    fn charge_scan(&mut self) {
        self.record("scan");
        self.stats.scan_calls += 1;
        // ⌈log₂ (PEs in use)⌉ router passes — the paper's logarithmic
        // primitive — plus one local pass per extra virtualization layer
        // once the program outgrows the physical array.
        let in_use = self.n_virt.min(self.config.phys_pes).max(2);
        let log = (in_use as f64).log2().ceil() as u64;
        self.stats.scan_passes += log + (self.virt_factor - 1);
    }

    /// Global OR over active PEs (the MP-1's `globalor`).
    pub fn reduce_or(&mut self, p: &Plural<bool>) -> bool {
        assert_eq!(p.len(), self.n_virt);
        self.charge_scan();
        let enabled = &self.enabled;
        p.as_slice()
            .par_iter()
            .enumerate()
            .any(|(pe, &v)| enabled[pe] && v)
    }

    /// Global AND over active PEs (identity `true` when none active).
    pub fn reduce_and(&mut self, p: &Plural<bool>) -> bool {
        assert_eq!(p.len(), self.n_virt);
        self.charge_scan();
        let enabled = &self.enabled;
        p.as_slice()
            .par_iter()
            .enumerate()
            .all(|(pe, &v)| !enabled[pe] || v)
    }

    /// Global sum of a u64 plural over active PEs.
    pub fn reduce_sum(&mut self, p: &Plural<u64>) -> u64 {
        assert_eq!(p.len(), self.n_virt);
        self.charge_scan();
        let enabled = &self.enabled;
        p.as_slice()
            .par_iter()
            .enumerate()
            .map(|(pe, &v)| if enabled[pe] { v } else { 0 })
            .sum()
    }

    /// Segmented `scanOr`: OR of each segment's *active* PEs, deposited at
    /// the segment's boundary (first) PE; all other slots of the result are
    /// `false`. Inactive PEs contribute the identity, matching the MP-1's
    /// behaviour of skipping disabled PEs in a scan.
    pub fn scan_or(&mut self, p: &Plural<bool>, segs: &SegmentMap) -> Plural<bool> {
        self.seg_reduce(p, segs, false, |a, b| a || b)
    }

    /// Segmented `scanAnd`: AND of each segment's active PEs at the
    /// boundary PE (identity `true` for empty/inactive segments).
    pub fn scan_and(&mut self, p: &Plural<bool>, segs: &SegmentMap) -> Plural<bool> {
        self.seg_reduce(p, segs, true, |a, b| a && b)
    }

    /// Segmented `scanAdd` as an *inclusive prefix sum*: each active PE
    /// receives the sum of active values from its segment's start through
    /// itself (inactive PEs keep 0 and contribute 0). The MP-1 exposed
    /// exactly this family of prefix primitives; PARSEC itself only needs
    /// the reductions, but enumeration-style kernels (e.g. compacting the
    /// surviving role values) are built on scanAdd.
    pub fn scan_add(&mut self, p: &Plural<u64>, segs: &SegmentMap) -> Plural<u64> {
        assert_eq!(p.len(), self.n_virt, "plural size mismatch");
        assert_eq!(segs.len(), self.n_virt, "segment map size mismatch");
        self.charge_scan();
        let mut out = self.alloc(0u64);
        let enabled = &self.enabled;
        let src = p.as_slice();
        let results: Vec<(usize, Vec<u64>)> = (0..segs.num_segments())
            .into_par_iter()
            .map(|s| {
                let range = segs.range_of(s);
                let mut acc = 0u64;
                let prefix: Vec<u64> = range
                    .clone()
                    .map(|pe| {
                        if enabled[pe] {
                            acc += src[pe];
                        }
                        acc
                    })
                    .collect();
                (range.start, prefix)
            })
            .collect();
        let slice = out.as_mut_slice();
        for (start, prefix) in results {
            for (offset, v) in prefix.into_iter().enumerate() {
                if enabled[start + offset] {
                    slice[start + offset] = v;
                }
            }
        }
        out
    }

    fn seg_reduce(
        &mut self,
        p: &Plural<bool>,
        segs: &SegmentMap,
        identity: bool,
        op: impl Fn(bool, bool) -> bool + Sync,
    ) -> Plural<bool> {
        assert_eq!(p.len(), self.n_virt, "plural size mismatch");
        assert_eq!(segs.len(), self.n_virt, "segment map size mismatch");
        self.charge_scan();
        let mut out = self.alloc(identity);
        let enabled = &self.enabled;
        let src = p.as_slice();
        let results: Vec<(usize, bool)> = (0..segs.num_segments())
            .into_par_iter()
            .map(|s| {
                let mut acc = identity;
                for pe in segs.range_of(s) {
                    if enabled[pe] {
                        acc = op(acc, src[pe]);
                    }
                }
                (segs.start_of(s), acc)
            })
            .collect();
        for (boundary, value) in results {
            out.as_mut_slice()[boundary] = value;
        }
        out
    }

    /// `selectFirst`: the lowest-numbered *active* PE whose flag is set
    /// (MPL's enumeration primitive — the ACU uses it to pick a
    /// representative PE). Costs one scan.
    pub fn select_first(&mut self, p: &Plural<bool>) -> Option<usize> {
        assert_eq!(p.len(), self.n_virt, "plural size mismatch");
        self.charge_scan();
        let enabled = &self.enabled;
        p.as_slice()
            .iter()
            .enumerate()
            .find(|&(pe, &v)| enabled[pe] && v)
            .map(|(pe, _)| pe)
    }

    // ------------------------------------------------------------------
    // Global router
    // ------------------------------------------------------------------

    pub(crate) fn charge_xnet(&mut self, hops: usize) {
        self.record("xnet");
        self.stats.xnet_shifts += hops as u64 * self.virt_factor;
        self.stats.plural_ops += 1;
        self.stats.plural_slices += self.virt_factor;
    }

    fn charge_router(&mut self) {
        self.record("router");
        self.stats.router_ops += 1;
        self.stats.router_slices += self.virt_factor;
    }

    /// Routed gather: every active PE fetches `src[index[pe]]`. One router
    /// operation (the MP-1 router resolves an arbitrary permutation;
    /// many-to-one reads are fine — common read).
    pub fn gather<T: Copy + Send + Sync>(
        &mut self,
        src: &Plural<T>,
        index: &Plural<usize>,
        dst: &mut Plural<T>,
    ) {
        assert_eq!(src.len(), self.n_virt);
        assert_eq!(index.len(), self.n_virt);
        assert_eq!(dst.len(), self.n_virt);
        self.charge_router();
        let enabled = &self.enabled;
        let s = src.as_slice();
        let idx = index.as_slice();
        dst.as_mut_slice()
            .par_iter_mut()
            .enumerate()
            .for_each(|(pe, slot)| {
                if enabled[pe] {
                    let target = idx[pe];
                    assert!(target < s.len(), "router gather out of range: PE {pe} -> {target}");
                    *slot = s[target];
                }
            });
    }

    /// Routed scatter: every active PE sends its value to `dst[index[pe]]`.
    /// Write conflicts resolve deterministically: the lowest-numbered
    /// sending PE wins (the CRCW "a single processor succeeds" rule made
    /// reproducible).
    pub fn scatter<T: Copy + Send + Sync>(
        &mut self,
        src: &Plural<T>,
        index: &Plural<usize>,
        dst: &mut Plural<T>,
    ) {
        assert_eq!(src.len(), self.n_virt);
        assert_eq!(index.len(), self.n_virt);
        assert_eq!(dst.len(), self.n_virt);
        self.charge_router();
        // Deterministic serial application in ascending PE order; the
        // lowest sender's write lands last... no: lowest wins means apply
        // in descending order so the lowest overwrites.
        let enabled = &self.enabled;
        let idx = index.as_slice();
        let s = src.as_slice();
        let d = dst.as_mut_slice();
        for pe in (0..s.len()).rev() {
            if enabled[pe] {
                let target = idx[pe];
                assert!(target < d.len(), "router scatter out of range: PE {pe} -> {target}");
                d[target] = s[pe];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtualization_factor() {
        assert_eq!(Machine::mp1(1).virt_factor(), 1);
        assert_eq!(Machine::mp1(16_384).virt_factor(), 1);
        assert_eq!(Machine::mp1(16_385).virt_factor(), 2);
        assert_eq!(Machine::mp1(40_000).virt_factor(), 3);
        // The paper's 10-word network: q²n⁴ = 4·10⁴ = 40,000 → factor 3.
    }

    #[test]
    fn par_map_runs_on_active_pes_only() {
        let mut m = Machine::mp1(8);
        m.disable_pes(&[3, 5]);
        let mut p = m.alloc(0u32);
        m.par_map(&mut p, |pe, v| *v = pe as u32 + 1);
        assert_eq!(p.as_slice(), &[1, 2, 3, 0, 5, 0, 7, 8]);
        assert_eq!(m.stats.plural_ops, 1);
        assert_eq!(m.active_count(), 6);
    }

    #[test]
    fn par_zip_and_init() {
        let mut m = Machine::mp1(4);
        let a = m.par_init(0u32, |pe| pe as u32);
        let mut b = m.alloc(100u32);
        m.par_zip(&mut b, &a, |_, dst, src| *dst += *src);
        assert_eq!(b.as_slice(), &[100, 101, 102, 103]);
    }

    #[test]
    fn activity_stack_nesting() {
        let mut m = Machine::mp1(6);
        let even = m.par_init(false, |pe| pe % 2 == 0);
        let low = m.par_init(false, |pe| pe < 4);
        let mut hits = m.alloc(0u32);
        m.with_activity(&even, |m| {
            m.with_activity(&low, |m| {
                m.par_map(&mut hits, |_, v| *v = 1);
            });
            assert_eq!(m.active_count(), 3); // 0, 2, 4
        });
        assert_eq!(m.active_count(), 6);
        assert_eq!(hits.as_slice(), &[1, 0, 1, 0, 0, 0]);
    }

    #[test]
    fn reductions_respect_activity() {
        let mut m = Machine::mp1(4);
        let p = m.par_init(false, |pe| pe == 3);
        assert!(m.reduce_or(&p));
        let mask = m.par_init(false, |pe| pe < 3);
        let inside = m.with_activity(&mask, |m| m.reduce_or(&p));
        assert!(!inside);
        let all_true = m.par_init(false, |_| true);
        assert!(m.reduce_and(&all_true));
        let sums = m.par_init(0u64, |pe| pe as u64);
        assert_eq!(m.reduce_sum(&sums), 6);
    }

    #[test]
    fn reduce_and_identity_when_none_active() {
        let mut m = Machine::mp1(4);
        let none = m.alloc(false);
        let p = m.par_init(true, |_| false);
        let r = m.with_activity(&none, |m| m.reduce_and(&p));
        assert!(r, "AND over an empty active set is the identity true");
    }

    #[test]
    fn scan_or_deposits_at_boundaries() {
        let mut m = Machine::mp1(9);
        let segs = SegmentMap::uniform(9, 3);
        let p = m.par_init(false, |pe| pe == 4 || pe == 8);
        let r = m.scan_or(&p, &segs);
        assert_eq!(
            r.as_slice(),
            &[false, false, false, true, false, false, true, false, false]
        );
        assert_eq!(m.stats.scan_calls, 1);
    }

    #[test]
    fn scan_and_skips_disabled_pes() {
        let mut m = Machine::mp1(6);
        let segs = SegmentMap::uniform(6, 3);
        // Segment 0: values T,F,T with PE 1 disabled → AND = T.
        // Segment 1: values T,T,F all enabled → AND = F.
        m.disable_pes(&[1]);
        let p = m.par_init(false, |pe| matches!(pe, 0 | 2 | 3 | 4));
        let r = m.scan_and(&p, &segs);
        assert!(r.as_slice()[0]);
        assert!(!r.as_slice()[3]);
    }

    #[test]
    fn gather_and_scatter() {
        let mut m = Machine::mp1(5);
        let src = m.par_init(0u32, |pe| pe as u32 * 10);
        let reverse = m.par_init(0usize, |pe| 4 - pe);
        let mut dst = m.alloc(0u32);
        m.gather(&src, &reverse, &mut dst);
        assert_eq!(dst.as_slice(), &[40, 30, 20, 10, 0]);
        // Scatter with a conflict: PEs 0, 1 and 2 all send to slot 0; the
        // lowest sender (PE 0) wins.
        let idx = m.par_init(0usize, |pe| if pe <= 2 { 0 } else { pe });
        let vals = m.par_init(0u32, |pe| pe as u32 + 1);
        let mut out = m.alloc(99u32);
        m.scatter(&vals, &idx, &mut out);
        assert_eq!(out.as_slice()[0], 1); // PE 0's value (pe+1 = 1)
        assert_eq!(out.as_slice()[3], 4);
        assert_eq!(m.stats.router_ops, 2);
    }

    #[test]
    fn select_first_respects_activity() {
        let mut m = Machine::mp1(6);
        let p = m.par_init(false, |pe| pe == 2 || pe == 4);
        assert_eq!(m.select_first(&p), Some(2));
        let mask = m.par_init(false, |pe| pe > 2);
        let inside = m.with_activity(&mask, |m| m.select_first(&p));
        assert_eq!(inside, Some(4));
        let none = m.alloc(false);
        assert_eq!(m.select_first(&none), None);
    }

    #[test]
    fn tracing_records_operations() {
        let mut m = Machine::mp1(8);
        assert!(m.trace().is_empty());
        m.enable_trace();
        let mut p = m.alloc(false);
        m.par_map(&mut p, |_, v| *v = true);
        let segs = SegmentMap::global(8);
        let _ = m.scan_or(&p, &segs);
        let mask = m.par_init(false, |pe| pe < 4);
        m.with_activity(&mask, |m| {
            m.par_map(&mut p, |_, v| *v = false);
        });
        let ops: Vec<&str> = m.trace().iter().map(|t| t.op).collect();
        assert!(ops.contains(&"plural"));
        assert!(ops.contains(&"scan"));
        // The op inside the narrowed activity frame saw 4 active PEs.
        let narrowed = m.trace().iter().rev().find(|t| t.op == "plural").unwrap();
        assert_eq!(narrowed.active, 4);
        // Enabling twice is idempotent.
        let len = m.trace().len();
        m.enable_trace();
        assert_eq!(m.trace().len(), len);
    }

    #[test]
    fn memory_budget_enforced() {
        let mut m = Machine::mp1(4);
        // 16 KB per PE: two 8 KB allocations fit, a third does not.
        let a = m.alloc([0u8; 8192]);
        let _b = m.alloc([0u8; 8000]);
        assert!(m.stats.peak_pe_memory_bytes >= 16192);
        m.free(a);
        let _c = m.alloc([0u8; 8192]); // fits again after free
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _d = m.alloc([0u8; 8192]);
        }));
        assert!(result.is_err(), "exceeding 16 KB per PE must fail loudly");
    }

    #[test]
    fn virtualized_ops_cost_more() {
        let mut small = Machine::mp1(100);
        let mut big = Machine::mp1(40_000); // factor 3
        let mut ps = small.alloc(0u8);
        let mut pb = big.alloc(0u8);
        small.par_map(&mut ps, |_, _| {});
        big.par_map(&mut pb, |_, _| {});
        assert_eq!(small.stats.plural_slices, 1);
        assert_eq!(big.stats.plural_slices, 3);
        assert!(big.estimated_seconds() > small.estimated_seconds());
    }

    #[test]
    fn scan_cost_is_logarithmic_in_phys_pes() {
        let mut m = Machine::mp1(16);
        let p = m.alloc(false);
        let segs = SegmentMap::global(16);
        let before = m.stats.scan_passes;
        let _ = m.scan_or(&p, &segs);
        assert_eq!(m.stats.scan_passes - before, 4); // log2(16 PEs in use)
        // A program spanning the whole array pays log2(16384) per scan.
        let mut full = Machine::mp1(16_384);
        let pf = full.alloc(false);
        let sf = SegmentMap::global(16_384);
        let _ = full.scan_or(&pf, &sf);
        assert_eq!(full.stats.scan_passes, 14);
        // A virtualized program additionally pays local passes.
        let mut virt = Machine::mp1(40_000);
        let pv = virt.alloc(false);
        let sv = SegmentMap::global(40_000);
        let _ = virt.scan_or(&pv, &sv);
        assert_eq!(virt.stats.scan_passes, 16); // 14 + (3 - 1)
    }
}
