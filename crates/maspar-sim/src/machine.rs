//! The Machine: PE array, ACU activity control, plural operations, scans,
//! and the global router.

use crate::bits::{self, PluralBits};
use crate::fault::{FaultPlan, FaultWord};
use crate::plural::Plural;
use crate::scan::SegmentMap;
use crate::stats::{CostModel, MachineStats};
use rayon::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Static machine parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Physical PEs (the full MP-1: 16,384).
    pub phys_pes: usize,
    /// PE-local memory, bytes (MP-1: 16 KB).
    pub pe_memory_bytes: usize,
    /// Cost weights for the time estimate.
    pub cost: CostModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            phys_pes: 16_384,
            pe_memory_bytes: 16 * 1024,
            cost: CostModel::default(),
        }
    }
}

/// The simulated machine, sized for one program's virtual PE count.
///
/// When a program needs more virtual PEs than the machine has physical
/// ones, every broadcast instruction is executed ⌈virt/phys⌉ times — the
/// paper's processor virtualization (design decision 6), and the origin of
/// the 0.15 s → 0.45 s staircase in its time trials.
///
/// # Fault injection
///
/// Arming a [`FaultPlan`] (see [`Machine::arm_faults`]) switches the
/// machine onto a fault-checked execution path:
///
/// * every broadcast instruction advances a global instruction counter
///   ([`Machine::op_count`]) that transient faults are keyed to;
/// * virtual PEs are explicitly mapped onto physical PEs
///   (`phys = healthy[virt mod healthy.len()]`); a virtual PE whose
///   physical home is dead silently skips broadcast instructions — its
///   local memory goes stale, exactly the failure the paper's machine
///   could suffer;
/// * router/X-Net/scan payloads and freshly written memory words can be
///   corrupted per the plan; out-of-range router targets (possible once
///   an index plural has been corrupted) are *dropped and counted*
///   instead of killing the program;
/// * [`Machine::probe_pes`] is the PE self-test programs use to detect
///   dead PEs, and [`Machine::retire_pes`] remaps virtual PEs onto the
///   remaining healthy physical PEs.
///
/// Without an armed plan none of this costs anything and the instruction
/// counts are bit-identical to the pre-fault-injection simulator.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    n_virt: usize,
    virt_factor: u64,
    /// Activity flags per virtual PE, packed 64 to a word (bit `pe % 64`
    /// of word `pe / 64`); the stack implements MPL's plural if. Packed
    /// because the word-parallel kernels below mask activity with single
    /// bitwise ops; scalar per-PE operations test individual bits.
    enabled: Vec<u64>,
    activity_stack: Vec<Vec<u64>>,
    /// Simulated PE-local memory in use (bytes per physical PE).
    pe_memory_used: usize,
    /// Optional instruction trace (the paper singles out the MP-1's
    /// "extensive debugging support"; this is ours).
    trace: Option<Vec<TraceEntry>>,
    /// Armed fault schedule (`None` = fault-free fast path).
    faults: Option<FaultPlan>,
    /// Global broadcast-instruction counter; transient faults key on it.
    op_count: u64,
    /// Physical PEs the program has retired (detected dead and remapped
    /// away from). Only populated while faults are armed.
    retired: Vec<bool>,
    /// Healthy (non-retired) physical PEs, ascending; the virtual→physical
    /// map is `healthy[virt mod healthy.len()]`. Empty when unarmed.
    healthy: Vec<usize>,
    /// Cached per-virtual-PE deadness under the current mapping, packed
    /// like `enabled`. Empty when unarmed (so the fault-free path never
    /// consults it).
    virt_dead: Vec<u64>,
    /// Ghost mode: every broadcast instruction charges exactly what the
    /// real machine would charge, then returns without touching data
    /// (plurals stay empty). Used to replay a program's instruction
    /// stream for per-sentence [`MachineStats`] accounting after the data
    /// work already happened on a joined mega-batch machine.
    ghost: bool,
    /// Pre-recorded results handed back by [`Machine::reduce_sum`] in
    /// ghost mode, in program order (the data-dependent values the real
    /// run observed).
    ghost_reductions: VecDeque<u64>,
    pub stats: MachineStats,
}

/// One traced machine operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Operation kind: `plural`, `scan_or`, `scan_and`, `scan_add`,
    /// `reduce`, `gather`, `scatter`, `xnet`, `activity`.
    pub op: &'static str,
    /// PEs active when the operation was broadcast.
    pub active: usize,
}

impl Machine {
    /// A machine executing a program of `n_virt` virtual PEs.
    ///
    /// ```
    /// use maspar_sim::{Machine, SegmentMap};
    ///
    /// // 8 virtual PEs; each computes its id, then a segmented scanOr
    /// // reduces each half to its boundary PE.
    /// let mut m = Machine::mp1(8);
    /// let flags = m.par_init(false, |pe| pe == 6);
    /// let segs = SegmentMap::uniform(8, 4);
    /// let reduced = m.scan_or(&flags, &segs);
    /// assert!(!reduced.get(0));     // first half: no flag
    /// assert!(*reduced.get(4));     // second half: PE 6 flagged
    /// assert_eq!(m.stats.scan_calls, 1);
    /// ```
    pub fn new(config: MachineConfig, n_virt: usize) -> Self {
        assert!(n_virt > 0, "a program needs at least one virtual PE");
        assert!(config.phys_pes > 0);
        let virt_factor = n_virt.div_ceil(config.phys_pes) as u64;
        let mut enabled = vec![!0u64; bits::word_count(n_virt)];
        if let Some(last) = enabled.last_mut() {
            *last &= bits::tail_mask(n_virt);
        }
        Machine {
            config,
            n_virt,
            virt_factor,
            enabled,
            activity_stack: Vec::new(),
            pe_memory_used: 0,
            trace: None,
            faults: None,
            op_count: 0,
            retired: Vec::new(),
            healthy: Vec::new(),
            virt_dead: Vec::new(),
            ghost: false,
            ghost_reductions: VecDeque::new(),
            stats: MachineStats::default(),
        }
    }

    /// Full-size MP-1 with default cost model.
    pub fn mp1(n_virt: usize) -> Self {
        Machine::new(MachineConfig::default(), n_virt)
    }

    /// A ghost machine: charges instructions and memory exactly like
    /// [`Machine::new`] for the same program, but executes no data work —
    /// plurals are allocated empty and every broadcast returns after its
    /// `charge_*` call. Data-dependent scalars ([`Machine::reduce_sum`])
    /// are replayed from the queue loaded via
    /// [`Machine::push_ghost_reductions`]. Ghost machines must never be
    /// fault-armed or traced: both paths inspect plural contents.
    pub fn new_ghost(config: MachineConfig, n_virt: usize) -> Self {
        let mut m = Machine::new(config, n_virt);
        m.ghost = true;
        m
    }

    /// Is this a ghost (charge-only) machine?
    pub fn is_ghost(&self) -> bool {
        self.ghost
    }

    /// Queue the `reduce_sum` results a ghost replay should observe, in
    /// program order. Call before running the program; extra queued
    /// entries are simply never popped (see
    /// [`Machine::leftover_ghost_reductions`]).
    pub fn push_ghost_reductions(&mut self, values: &[u64]) {
        assert!(self.ghost, "reduction replay is ghost-only");
        self.ghost_reductions.extend(values.iter().copied());
    }

    /// Reduction results queued but not consumed (a replay that early-exits
    /// leaves its trailing entries here; callers may assert they are all
    /// zeros).
    pub fn leftover_ghost_reductions(&self) -> Vec<u64> {
        self.ghost_reductions.iter().copied().collect()
    }

    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    pub fn n_virt(&self) -> usize {
        self.n_virt
    }

    /// ⌈virtual PEs / physical PEs⌉ — the paper's virtualization multiplier.
    pub fn virt_factor(&self) -> u64 {
        self.virt_factor
    }

    /// PEs currently executing broadcast instructions.
    pub fn active_count(&self) -> usize {
        self.enabled.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_enabled(&self, pe: usize) -> bool {
        self.enabled[pe / 64] >> (pe % 64) & 1 == 1
    }

    /// Estimated MP-1 seconds for everything executed so far.
    pub fn estimated_seconds(&self) -> f64 {
        self.stats.estimated_seconds(&self.config.cost)
    }

    /// Turn on instruction tracing; each subsequent operation records its
    /// kind and the active PE count.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The trace so far (empty when tracing is off).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    fn record(&mut self, op: &'static str) {
        if self.trace.is_some() {
            let active = self.active_count();
            if let Some(trace) = &mut self.trace {
                trace.push(TraceEntry { op, active });
            }
        }
    }

    /// Permanently disable specific PEs (used for layout diagonals and for
    /// failure-injection tests). Applies to the *current* activity frame
    /// and, by construction, everything nested within it.
    pub fn disable_pes(&mut self, pes: &[usize]) {
        for &pe in pes {
            self.enabled[pe / 64] &= !(1u64 << (pe % 64));
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Arm a fault schedule. From here on, broadcast instructions consult
    /// the plan: dead physical PEs freeze their virtual PEs' memory, and
    /// transient faults fire at their scheduled instruction counts.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.retired = vec![false; self.config.phys_pes];
        self.healthy = (0..self.config.phys_pes).collect();
        self.faults = Some(plan);
        self.recompute_virt_dead();
    }

    /// Is a fault plan armed (even an empty one)?
    pub fn faults_armed(&self) -> bool {
        self.faults.is_some()
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Broadcast instructions executed so far (plural ops, activity
    /// narrowings, scans, router and X-Net operations all count).
    pub fn op_count(&self) -> u64 {
        self.op_count
    }

    /// The physical PE hosting virtual PE `virt` (first virtualization
    /// layer) under the current mapping.
    pub fn phys_of(&self, virt: usize) -> usize {
        if self.healthy.is_empty() {
            virt % self.config.phys_pes
        } else {
            self.healthy[virt % self.healthy.len()]
        }
    }

    /// Physical PEs not yet retired.
    pub fn healthy_count(&self) -> usize {
        if self.healthy.is_empty() {
            self.config.phys_pes
        } else {
            self.healthy.len()
        }
    }

    fn recompute_virt_dead(&mut self) {
        match &self.faults {
            Some(plan) => {
                let mut dead = vec![0u64; bits::word_count(self.n_virt)];
                for v in 0..self.n_virt {
                    let phys = self.healthy[v % self.healthy.len()];
                    if plan.is_dead(phys) {
                        dead[v / 64] |= 1u64 << (v % 64);
                    }
                }
                self.virt_dead = dead;
            }
            None => self.virt_dead.clear(),
        }
    }

    /// Retire physical PEs (detected dead): remap every virtual PE onto
    /// the remaining healthy physical array. Returns the new healthy
    /// count; returns 0 — and changes nothing — if retiring would leave no
    /// healthy PE. The remap itself is charged as one routed copy.
    pub fn retire_pes(&mut self, pes: &[usize]) -> usize {
        assert!(
            self.faults.is_some(),
            "retire_pes requires an armed fault plan"
        );
        let mut retired = self.retired.clone();
        for &p in pes {
            if p < retired.len() {
                retired[p] = true;
            }
        }
        let healthy: Vec<usize> = (0..self.config.phys_pes).filter(|&p| !retired[p]).collect();
        if healthy.is_empty() {
            return 0;
        }
        self.retired = retired;
        self.healthy = healthy;
        // Moving each virtual PE's state to its new physical home costs
        // one routed permutation.
        self.charge_router();
        self.recompute_virt_dead();
        self.healthy.len()
    }

    /// PE self-test: every active PE writes a nonce-derived pattern into a
    /// scratch word; the host reads the array back and reports, by
    /// *physical* id, every PE whose write did not land. One broadcast
    /// instruction. Use a fresh `nonce` per probe so a PE that died between
    /// probes cannot alias a stale pattern. Detects persistent (dead-PE)
    /// faults, which time redundancy cannot; a transient fault striking
    /// the probe itself at worst yields a false positive, and retiring a
    /// healthy PE is conservative, never incorrect.
    pub fn probe_pes(&mut self, nonce: u64) -> Vec<usize> {
        let expected =
            move |pe: usize| (nonce ^ (pe as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
        let mut scratch = self.alloc(0u64);
        self.par_map(&mut scratch, move |pe, w| *w = expected(pe));
        let values = scratch.as_slice().to_vec();
        self.free(scratch);
        let mut dead = std::collections::BTreeSet::new();
        for (pe, &v) in values.iter().enumerate() {
            if self.is_enabled(pe) && v != expected(pe) {
                dead.insert(self.phys_of(pe));
            }
        }
        dead.into_iter().collect()
    }

    /// Does virtual PE `pe` execute broadcast instructions right now
    /// (active *and* physically alive)?
    pub(crate) fn is_live(&self, pe: usize) -> bool {
        bits::live_at(&self.enabled, &self.virt_dead, pe)
    }

    /// Is virtual PE `pe` hosted on a dead physical PE (false when no
    /// plan is armed)?
    fn virt_is_dead(&self, pe: usize) -> bool {
        !self.virt_dead.is_empty() && self.virt_dead[pe / 64] >> (pe % 64) & 1 == 1
    }

    /// Live-PE mask for packed word `w`: enabled minus dead.
    #[inline]
    fn live_word(&self, w: usize) -> u64 {
        let e = self.enabled[w];
        if self.virt_dead.is_empty() {
            e
        } else {
            e & !self.virt_dead[w]
        }
    }

    /// Count the enabled-but-dead slots one data-carrying broadcast
    /// instruction skipped (no-op on the fault-free path).
    pub(crate) fn count_dead_skips(&mut self) {
        if self.virt_dead.is_empty() {
            return;
        }
        let skips: u64 = self
            .enabled
            .iter()
            .zip(&self.virt_dead)
            .map(|(&e, &d)| (e & d).count_ones() as u64)
            .sum();
        self.stats.dead_pe_skips += skips;
    }

    /// Apply the memory flips scheduled for instruction `op` to the plural
    /// the instruction just wrote.
    fn apply_memory_flips<T: FaultWord>(&mut self, op: u64, data: &mut [T]) {
        let hits: Vec<(usize, u32)> = match &self.faults {
            Some(plan) => plan
                .memory_faults_at(op)
                .filter(|&(phys, _)| !plan.is_dead(phys)) // dead memory is inert
                .collect(),
            None => return,
        };
        for (phys, bit) in hits {
            if let Some(v) = self.lowest_virt_on(phys) {
                if v < data.len() {
                    data[v] = data[v].fault_flip(bit);
                    self.stats.memory_flips += 1;
                }
            }
        }
    }

    /// Apply the router-payload corruptions scheduled for instruction `op`
    /// to a communication result.
    pub(crate) fn apply_router_corruption<T: FaultWord>(&mut self, op: u64, data: &mut [T]) {
        let hits: Vec<(usize, u64)> = match &self.faults {
            Some(plan) => plan
                .router_faults_at(op)
                .filter(|&(phys, _)| !plan.is_dead(phys))
                .collect(),
            None => return,
        };
        for (phys, mask) in hits {
            if let Some(v) = self.lowest_virt_on(phys) {
                if v < data.len() {
                    data[v] = data[v].fault_xor(mask);
                    self.stats.router_corruptions += 1;
                }
            }
        }
    }

    /// [`Machine::apply_memory_flips`] for a packed boolean plural: the
    /// flip lands on the same virtual PE's 1-bit word, and a 1-bit word
    /// always flips (`bool::fault_flip` reduces the bit index modulo 1).
    fn apply_memory_flips_bits(&mut self, op: u64, data: &mut PluralBits) {
        let hits: Vec<(usize, u32)> = match &self.faults {
            Some(plan) => plan
                .memory_faults_at(op)
                .filter(|&(phys, _)| !plan.is_dead(phys))
                .collect(),
            None => return,
        };
        for (phys, _bit) in hits {
            if let Some(v) = self.lowest_virt_on(phys) {
                if v < data.len() {
                    data.flip(v);
                    self.stats.memory_flips += 1;
                }
            }
        }
    }

    /// [`Machine::apply_router_corruption`] for a packed boolean plural.
    /// `bool::fault_xor` flips iff the mask is odd, but the event is
    /// counted either way — mirrored exactly so packed and unpacked runs
    /// report identical fault statistics.
    pub(crate) fn apply_router_corruption_bits(&mut self, op: u64, data: &mut PluralBits) {
        let hits: Vec<(usize, u64)> = match &self.faults {
            Some(plan) => plan
                .router_faults_at(op)
                .filter(|&(phys, _)| !plan.is_dead(phys))
                .collect(),
            None => return,
        };
        for (phys, mask) in hits {
            if let Some(v) = self.lowest_virt_on(phys) {
                if v < data.len() {
                    if mask & 1 == 1 {
                        data.flip(v);
                    }
                    self.stats.router_corruptions += 1;
                }
            }
        }
    }

    /// Corrupt a scalar reduction result if a router fault fires on this
    /// instruction (the reduction's single payload travels to the ACU).
    fn corrupt_reduction<T: FaultWord>(&mut self, op: u64, value: T) -> T {
        let masks: Vec<u64> = match &self.faults {
            Some(plan) => plan.router_faults_at(op).map(|(_, mask)| mask).collect(),
            None => return value,
        };
        let mut value = value;
        for mask in masks {
            value = value.fault_xor(mask);
            self.stats.router_corruptions += 1;
        }
        value
    }

    /// The lowest virtual PE currently mapped onto physical PE `phys`.
    fn lowest_virt_on(&self, phys: usize) -> Option<usize> {
        let idx = if self.healthy.is_empty() {
            if phys < self.config.phys_pes {
                phys
            } else {
                return None;
            }
        } else {
            self.healthy.iter().position(|&h| h == phys)?
        };
        (idx < self.n_virt).then_some(idx)
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// Charge an allocation of `bytes_per_elem` simulated bytes per
    /// virtual PE against the 16 KB-per-PE budget (each physical PE holds
    /// `virt_factor` layers). Shared by [`Machine::alloc`] and
    /// [`Machine::alloc_bits`] so both representations are charged — and
    /// fail — identically: the simulated footprint is a property of the
    /// program, not of the host representation.
    fn charge_alloc(&mut self, bytes_per_elem: usize) {
        let per_phys = bytes_per_elem * self.virt_factor as usize;
        self.pe_memory_used += per_phys;
        assert!(
            self.pe_memory_used <= self.config.pe_memory_bytes,
            "PE-local memory exhausted: {} of {} bytes (the MP-1 had 16 KB per PE)",
            self.pe_memory_used,
            self.config.pe_memory_bytes
        );
        self.stats.peak_pe_memory_bytes = self.stats.peak_pe_memory_bytes.max(self.pe_memory_used);
    }

    fn release_alloc(&mut self, bytes_per_elem: usize) {
        let per_phys = bytes_per_elem * self.virt_factor as usize;
        self.pe_memory_used = self.pe_memory_used.saturating_sub(per_phys);
    }

    /// Allocate a plural value, one `T` per virtual PE, charged against the
    /// 16 KB-per-PE budget (each physical PE holds `virt_factor` layers).
    pub fn alloc<T: Clone + Send + Sync>(&mut self, init: T) -> Plural<T> {
        self.charge_alloc(std::mem::size_of::<T>());
        if self.ghost {
            return Plural::from_vec(Vec::new());
        }
        Plural::from_vec(vec![init; self.n_virt])
    }

    /// Release a plural's memory (host keeps the data; the budget shrinks).
    pub fn free<T>(&mut self, plural: Plural<T>) {
        self.release_alloc(std::mem::size_of::<T>());
        drop(plural);
    }

    /// Allocate a packed boolean plural, charged exactly like
    /// `alloc::<bool>` — one simulated byte per PE — so packed and
    /// unpacked programs hit the 16 KB budget at the same instruction.
    pub fn alloc_bits(&mut self, init: bool) -> PluralBits {
        self.charge_alloc(std::mem::size_of::<bool>());
        if self.ghost {
            return PluralBits::filled(0, init);
        }
        PluralBits::filled(self.n_virt, init)
    }

    /// Release a packed boolean plural's memory.
    pub fn free_bits(&mut self, plural: PluralBits) {
        self.release_alloc(std::mem::size_of::<bool>());
        drop(plural);
    }

    // ------------------------------------------------------------------
    // Broadcast plural instructions
    // ------------------------------------------------------------------

    fn charge_plural_op(&mut self) -> u64 {
        self.record("plural");
        self.stats.plural_ops += 1;
        self.stats.plural_slices += self.virt_factor;
        self.op_count += 1;
        self.op_count
    }

    /// One broadcast instruction: every active PE updates its slot of `p`
    /// from its PE id. Runs data-parallel on the host.
    pub fn par_map<T: Send + FaultWord>(
        &mut self,
        p: &mut Plural<T>,
        f: impl Fn(usize, &mut T) + Sync,
    ) {
        if self.ghost {
            self.charge_plural_op();
            return;
        }
        assert_eq!(p.len(), self.n_virt, "plural size mismatch");
        let op = self.charge_plural_op();
        self.count_dead_skips();
        let enabled: &[u64] = &self.enabled;
        let dead: &[u64] = &self.virt_dead;
        p.as_mut_slice()
            .par_iter_mut()
            .enumerate()
            .for_each(|(pe, slot)| {
                if bits::live_at(enabled, dead, pe) {
                    f(pe, slot);
                }
            });
        self.apply_memory_flips(op, p.as_mut_slice());
    }

    /// One broadcast instruction reading a second plural: `dst[pe] =
    /// f(pe, dst[pe], src[pe])` on active PEs.
    pub fn par_zip<T: Send + FaultWord, U: Sync>(
        &mut self,
        dst: &mut Plural<T>,
        src: &Plural<U>,
        f: impl Fn(usize, &mut T, &U) + Sync,
    ) {
        if self.ghost {
            self.charge_plural_op();
            return;
        }
        assert_eq!(dst.len(), self.n_virt, "plural size mismatch");
        assert_eq!(src.len(), self.n_virt, "plural size mismatch");
        let op = self.charge_plural_op();
        self.count_dead_skips();
        let enabled: &[u64] = &self.enabled;
        let dead: &[u64] = &self.virt_dead;
        let src = src.as_slice();
        dst.as_mut_slice()
            .par_iter_mut()
            .enumerate()
            .for_each(|(pe, slot)| {
                if bits::live_at(enabled, dead, pe) {
                    f(pe, slot, &src[pe]);
                }
            });
        self.apply_memory_flips(op, dst.as_mut_slice());
    }

    /// One broadcast instruction reading two plurals: `dst[pe] =
    /// f(pe, dst[pe], a[pe], b[pe])` on active PEs.
    pub fn par_zip2<T: Send + FaultWord, U: Sync, V: Sync>(
        &mut self,
        dst: &mut Plural<T>,
        a: &Plural<U>,
        b: &Plural<V>,
        f: impl Fn(usize, &mut T, &U, &V) + Sync,
    ) {
        if self.ghost {
            self.charge_plural_op();
            return;
        }
        assert_eq!(dst.len(), self.n_virt, "plural size mismatch");
        assert_eq!(a.len(), self.n_virt, "plural size mismatch");
        assert_eq!(b.len(), self.n_virt, "plural size mismatch");
        let op = self.charge_plural_op();
        self.count_dead_skips();
        let enabled: &[u64] = &self.enabled;
        let dead: &[u64] = &self.virt_dead;
        let a = a.as_slice();
        let b = b.as_slice();
        dst.as_mut_slice()
            .par_iter_mut()
            .enumerate()
            .for_each(|(pe, slot)| {
                if bits::live_at(enabled, dead, pe) {
                    f(pe, slot, &a[pe], &b[pe]);
                }
            });
        self.apply_memory_flips(op, dst.as_mut_slice());
    }

    /// Build a fresh plural from PE ids in one instruction (active PEs run
    /// `f`; inactive PEs hold `fill`).
    pub fn par_init<T: Clone + Send + Sync + FaultWord>(
        &mut self,
        fill: T,
        f: impl Fn(usize) -> T + Sync,
    ) -> Plural<T> {
        let mut p = self.alloc(fill);
        self.par_map(&mut p, |pe, slot| *slot = f(pe));
        p
    }

    // ------------------------------------------------------------------
    // Activity control (MPL plural if)
    // ------------------------------------------------------------------

    /// Run `body` with activity narrowed to PEs where `mask` holds (and
    /// that were already active). Restores the previous activity set after.
    pub fn with_activity<R>(
        &mut self,
        mask: &Plural<bool>,
        body: impl FnOnce(&mut Machine) -> R,
    ) -> R {
        if self.ghost {
            self.charge_plural_op();
            return body(self);
        }
        assert_eq!(mask.len(), self.n_virt, "mask size mismatch");
        let saved = self.enabled.clone();
        self.activity_stack.push(saved);
        let mask = mask.as_slice();
        for (w, e) in self.enabled.iter_mut().enumerate() {
            let base = w * 64;
            let mut mw = 0u64;
            for (i, &b) in mask[base..(base + 64).min(mask.len())].iter().enumerate() {
                if b {
                    mw |= 1u64 << i;
                }
            }
            *e &= mw;
        }
        // Narrowing activity is itself one broadcast test.
        self.charge_plural_op();
        let result = body(self);
        self.enabled = self.activity_stack.pop().expect("activity stack underflow");
        result
    }

    /// [`Machine::with_activity`] for a packed mask: the narrowing is one
    /// bitwise AND per 64 PEs.
    pub fn with_activity_bits<R>(
        &mut self,
        mask: &PluralBits,
        body: impl FnOnce(&mut Machine) -> R,
    ) -> R {
        if self.ghost {
            self.charge_plural_op();
            return body(self);
        }
        assert_eq!(mask.len(), self.n_virt, "mask size mismatch");
        let saved = self.enabled.clone();
        self.activity_stack.push(saved);
        for (w, e) in self.enabled.iter_mut().enumerate() {
            *e &= mask.words()[w];
        }
        self.charge_plural_op();
        let result = body(self);
        self.enabled = self.activity_stack.pop().expect("activity stack underflow");
        result
    }

    // ------------------------------------------------------------------
    // Reductions and scans
    // ------------------------------------------------------------------

    fn charge_scan(&mut self) -> u64 {
        self.record("scan");
        self.stats.scan_calls += 1;
        // ⌈log₂ (PEs in use)⌉ router passes — the paper's logarithmic
        // primitive — plus one local pass per extra virtualization layer
        // once the program outgrows the physical array.
        let in_use = self.n_virt.min(self.config.phys_pes).max(2);
        let log = (in_use as f64).log2().ceil() as u64;
        self.stats.scan_passes += log + (self.virt_factor - 1);
        self.op_count += 1;
        self.op_count
    }

    /// Global OR over active PEs (the MP-1's `globalor`).
    pub fn reduce_or(&mut self, p: &Plural<bool>) -> bool {
        if self.ghost {
            self.charge_scan();
            return false;
        }
        assert_eq!(p.len(), self.n_virt);
        let op = self.charge_scan();
        self.count_dead_skips();
        let result = p
            .as_slice()
            .par_iter()
            .enumerate()
            .any(|(pe, &v)| self.is_live(pe) && v);
        self.corrupt_reduction(op, result)
    }

    /// Global AND over active PEs (identity `true` when none active).
    pub fn reduce_and(&mut self, p: &Plural<bool>) -> bool {
        if self.ghost {
            self.charge_scan();
            return true;
        }
        assert_eq!(p.len(), self.n_virt);
        let op = self.charge_scan();
        self.count_dead_skips();
        let result = p
            .as_slice()
            .par_iter()
            .enumerate()
            .all(|(pe, &v)| !self.is_live(pe) || v);
        self.corrupt_reduction(op, result)
    }

    /// Global sum of a u64 plural over active PEs.
    pub fn reduce_sum(&mut self, p: &Plural<u64>) -> u64 {
        if self.ghost {
            self.charge_scan();
            return self.ghost_reductions.pop_front().unwrap_or(0);
        }
        assert_eq!(p.len(), self.n_virt);
        let op = self.charge_scan();
        self.count_dead_skips();
        let result = p
            .as_slice()
            .par_iter()
            .enumerate()
            .map(|(pe, &v)| if self.is_live(pe) { v } else { 0 })
            .sum();
        self.corrupt_reduction(op, result)
    }

    /// Segmented `scanOr`: OR of each segment's *active* PEs, deposited at
    /// the segment's boundary (first) PE; all other slots of the result are
    /// `false`. Inactive PEs contribute the identity, matching the MP-1's
    /// behaviour of skipping disabled PEs in a scan.
    pub fn scan_or(&mut self, p: &Plural<bool>, segs: &SegmentMap) -> Plural<bool> {
        self.seg_reduce(p, segs, false, |a, b| a || b)
    }

    /// Segmented `scanAnd`: AND of each segment's active PEs at the
    /// boundary PE (identity `true` for empty/inactive segments).
    pub fn scan_and(&mut self, p: &Plural<bool>, segs: &SegmentMap) -> Plural<bool> {
        self.seg_reduce(p, segs, true, |a, b| a && b)
    }

    /// Segmented `scanAdd` as an *inclusive prefix sum*: each active PE
    /// receives the sum of active values from its segment's start through
    /// itself (inactive PEs keep 0 and contribute 0). The MP-1 exposed
    /// exactly this family of prefix primitives; PARSEC itself only needs
    /// the reductions, but enumeration-style kernels (e.g. compacting the
    /// surviving role values) are built on scanAdd.
    pub fn scan_add(&mut self, p: &Plural<u64>, segs: &SegmentMap) -> Plural<u64> {
        if self.ghost {
            self.charge_scan();
            return self.alloc(0u64);
        }
        assert_eq!(p.len(), self.n_virt, "plural size mismatch");
        assert_eq!(segs.len(), self.n_virt, "segment map size mismatch");
        let op = self.charge_scan();
        self.count_dead_skips();
        let mut out = self.alloc(0u64);
        let src = p.as_slice();
        let results: Vec<(usize, Vec<u64>)> = (0..segs.num_segments())
            .into_par_iter()
            .map(|s| {
                let range = segs.range_of(s);
                let mut acc = 0u64;
                let prefix: Vec<u64> = range
                    .clone()
                    .map(|pe| {
                        if self.is_live(pe) {
                            acc += src[pe];
                        }
                        acc
                    })
                    .collect();
                (range.start, prefix)
            })
            .collect();
        let slice = out.as_mut_slice();
        for (start, prefix) in results {
            for (offset, v) in prefix.into_iter().enumerate() {
                if self.is_live(start + offset) {
                    slice[start + offset] = v;
                }
            }
        }
        self.apply_router_corruption(op, out.as_mut_slice());
        out
    }

    fn seg_reduce(
        &mut self,
        p: &Plural<bool>,
        segs: &SegmentMap,
        identity: bool,
        op: impl Fn(bool, bool) -> bool + Sync,
    ) -> Plural<bool> {
        if self.ghost {
            self.charge_scan();
            return self.alloc(identity);
        }
        assert_eq!(p.len(), self.n_virt, "plural size mismatch");
        assert_eq!(segs.len(), self.n_virt, "segment map size mismatch");
        let op_id = self.charge_scan();
        self.count_dead_skips();
        let mut out = self.alloc(identity);
        let src = p.as_slice();
        let results: Vec<(usize, bool)> = (0..segs.num_segments())
            .into_par_iter()
            .map(|s| {
                let mut acc = identity;
                for pe in segs.range_of(s) {
                    if self.is_live(pe) {
                        acc = op(acc, src[pe]);
                    }
                }
                (segs.start_of(s), acc)
            })
            .collect();
        let mut dead_boundaries = 0u64;
        for (boundary, value) in results {
            // A dead boundary PE cannot receive the deposit: its slot
            // keeps the identity and the loss is counted.
            if self.virt_is_dead(boundary) {
                dead_boundaries += 1;
            } else {
                out.as_mut_slice()[boundary] = value;
            }
        }
        self.stats.dead_pe_skips += dead_boundaries;
        self.apply_router_corruption(op_id, out.as_mut_slice());
        out
    }

    /// `selectFirst`: the lowest-numbered *active* PE whose flag is set
    /// (MPL's enumeration primitive — the ACU uses it to pick a
    /// representative PE). Costs one scan.
    pub fn select_first(&mut self, p: &Plural<bool>) -> Option<usize> {
        if self.ghost {
            self.charge_scan();
            return None;
        }
        assert_eq!(p.len(), self.n_virt, "plural size mismatch");
        self.charge_scan();
        self.count_dead_skips();
        // Explicit early-exit loop: return at the first live hit, testing
        // the cheap flag before the liveness bits. The packed variant
        // ([`Machine::select_first_bits`]) goes further and skips 64 PEs
        // per word via `trailing_zeros`.
        for (pe, &v) in p.as_slice().iter().enumerate() {
            if v && self.is_live(pe) {
                return Some(pe);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Global router
    // ------------------------------------------------------------------

    pub(crate) fn charge_xnet(&mut self, hops: usize) -> u64 {
        self.record("xnet");
        self.stats.xnet_shifts += hops as u64 * self.virt_factor;
        self.stats.plural_ops += 1;
        self.stats.plural_slices += self.virt_factor;
        self.op_count += 1;
        self.op_count
    }

    fn charge_router(&mut self) -> u64 {
        self.record("router");
        self.stats.router_ops += 1;
        self.stats.router_slices += self.virt_factor;
        self.op_count += 1;
        self.op_count
    }

    /// Routed gather: every active PE fetches `src[index[pe]]`. One router
    /// operation (the MP-1 router resolves an arbitrary permutation;
    /// many-to-one reads are fine — common read). With faults armed, an
    /// out-of-range index (a corrupted index plural) drops that PE's fetch
    /// and counts it in [`MachineStats::oob_routes`]; without faults it is
    /// a program bug and asserts.
    pub fn gather<T: Copy + Send + Sync + FaultWord>(
        &mut self,
        src: &Plural<T>,
        index: &Plural<usize>,
        dst: &mut Plural<T>,
    ) {
        if self.ghost {
            self.charge_router();
            return;
        }
        assert_eq!(src.len(), self.n_virt);
        assert_eq!(index.len(), self.n_virt);
        assert_eq!(dst.len(), self.n_virt);
        let op = self.charge_router();
        self.count_dead_skips();
        let armed = self.faults.is_some();
        let oob = AtomicU64::new(0);
        {
            let s = src.as_slice();
            let idx = index.as_slice();
            dst.as_mut_slice()
                .par_iter_mut()
                .enumerate()
                .for_each(|(pe, slot)| {
                    if self.is_live(pe) {
                        let target = idx[pe];
                        if target >= s.len() {
                            assert!(armed, "router gather out of range: PE {pe} -> {target}");
                            oob.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        *slot = s[target];
                    }
                });
        }
        self.stats.oob_routes += oob.into_inner();
        self.apply_router_corruption(op, dst.as_mut_slice());
    }

    /// Routed scatter: every active PE sends its value to `dst[index[pe]]`.
    /// Write conflicts resolve deterministically: the lowest-numbered
    /// sending PE wins (the CRCW "a single processor succeeds" rule made
    /// reproducible). Out-of-range targets behave as in [`Machine::gather`].
    pub fn scatter<T: Copy + Send + Sync + FaultWord>(
        &mut self,
        src: &Plural<T>,
        index: &Plural<usize>,
        dst: &mut Plural<T>,
    ) {
        if self.ghost {
            self.charge_router();
            return;
        }
        assert_eq!(src.len(), self.n_virt);
        assert_eq!(index.len(), self.n_virt);
        assert_eq!(dst.len(), self.n_virt);
        let op = self.charge_router();
        self.count_dead_skips();
        let armed = self.faults.is_some();
        // Deterministic serial application in ascending PE order; the
        // lowest sender's write lands last... no: lowest wins means apply
        // in descending order so the lowest overwrites.
        let mut oob = 0u64;
        {
            let idx = index.as_slice();
            let s = src.as_slice();
            let d = dst.as_mut_slice();
            for pe in (0..s.len()).rev() {
                if self.is_live(pe) {
                    let target = idx[pe];
                    if target >= d.len() {
                        assert!(armed, "router scatter out of range: PE {pe} -> {target}");
                        oob += 1;
                        continue;
                    }
                    // A dead receiving PE's memory cannot be written.
                    if self.virt_is_dead(target) {
                        continue;
                    }
                    d[target] = s[pe];
                }
            }
        }
        self.stats.oob_routes += oob;
        self.apply_router_corruption(op, dst.as_mut_slice());
    }

    // ------------------------------------------------------------------
    // Packed (bit-sliced) boolean kernels: 64 PEs per host word-op
    // ------------------------------------------------------------------
    //
    // Each kernel issues exactly the broadcast instructions its unpacked
    // counterpart issues — same `charge_*` calls, same `count_dead_skips`,
    // same fault application points — so a program ported from
    // `Plural<bool>` to `PluralBits` produces bit-identical
    // [`MachineStats`], instruction counts and cycle estimates. Only the
    // host representation (and host wall time) changes.

    /// One broadcast instruction: every live PE writes its slot of `dst`
    /// from the per-PE `want` table. The packed counterpart of
    /// `par_map(&mut p, |pe, v| *v = want[pe])`, executed as a masked
    /// word merge per 64 PEs.
    pub fn par_write_bits(&mut self, dst: &mut PluralBits, want: &[bool]) {
        if self.ghost {
            self.charge_plural_op();
            return;
        }
        assert_eq!(dst.len(), self.n_virt, "plural size mismatch");
        assert_eq!(want.len(), self.n_virt, "plural size mismatch");
        let op = self.charge_plural_op();
        self.count_dead_skips();
        for w in 0..dst.words().len() {
            let live = self.live_word(w);
            if live == 0 {
                continue;
            }
            let base = w * 64;
            let mut value = 0u64;
            for (i, &b) in want[base..(base + 64).min(want.len())].iter().enumerate() {
                if b {
                    value |= 1u64 << i;
                }
            }
            let word = &mut dst.words_mut()[w];
            *word = (*word & !live) | (value & live);
        }
        self.apply_memory_flips_bits(op, dst);
    }

    /// One broadcast instruction: every live PE computes its bit of `dst`
    /// from its word of `src` (the packed counterpart of a
    /// `par_zip(&mut bool_dst, &u64_src, ...)`).
    pub fn par_map_bits(
        &mut self,
        dst: &mut PluralBits,
        src: &Plural<u64>,
        f: impl Fn(usize, u64) -> bool,
    ) {
        if self.ghost {
            self.charge_plural_op();
            return;
        }
        assert_eq!(dst.len(), self.n_virt, "plural size mismatch");
        assert_eq!(src.len(), self.n_virt, "plural size mismatch");
        let op = self.charge_plural_op();
        self.count_dead_skips();
        let s = src.as_slice();
        for w in 0..dst.words().len() {
            let mut m = self.live_word(w);
            if m == 0 {
                continue;
            }
            let mut word = dst.words()[w];
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                let pe = w * 64 + b;
                if f(pe, s[pe]) {
                    word |= 1u64 << b;
                } else {
                    word &= !(1u64 << b);
                }
                m &= m - 1;
            }
            dst.words_mut()[w] = word;
        }
        self.apply_memory_flips_bits(op, dst);
    }

    /// One broadcast instruction: every live PE updates its word of `dst`
    /// from its bit of `src` (the packed counterpart of a
    /// `par_zip(&mut u64_dst, &bool_src, ...)`). `f` runs for *every*
    /// live PE, matching the unpacked semantics.
    pub fn par_zip_bits(
        &mut self,
        dst: &mut Plural<u64>,
        src: &PluralBits,
        f: impl Fn(usize, &mut u64, bool),
    ) {
        if self.ghost {
            self.charge_plural_op();
            return;
        }
        assert_eq!(dst.len(), self.n_virt, "plural size mismatch");
        assert_eq!(src.len(), self.n_virt, "plural size mismatch");
        let op = self.charge_plural_op();
        self.count_dead_skips();
        let d = dst.as_mut_slice();
        for w in 0..bits::word_count(self.n_virt) {
            let mut m = self.live_word(w);
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                let pe = w * 64 + b;
                f(pe, &mut d[pe], src.get(pe));
                m &= m - 1;
            }
        }
        self.apply_memory_flips(op, dst.as_mut_slice());
    }

    /// Build a fresh packed plural in one instruction (live PEs run `f`;
    /// the rest hold `fill`) — the packed [`Machine::par_init`].
    pub fn par_init_bits(&mut self, fill: bool, f: impl Fn(usize) -> bool) -> PluralBits {
        if self.ghost {
            let mut p = self.alloc_bits(fill);
            self.par_write_bits(&mut p, &[]);
            return p;
        }
        let want: Vec<bool> = (0..self.n_virt).map(f).collect();
        let mut p = self.alloc_bits(fill);
        self.par_write_bits(&mut p, &want);
        p
    }

    /// Global OR over active PEs of a packed plural: a word scan with
    /// early exit — 64 PEs per iteration instead of one.
    pub fn reduce_or_bits(&mut self, p: &PluralBits) -> bool {
        if self.ghost {
            self.charge_scan();
            return false;
        }
        assert_eq!(p.len(), self.n_virt, "plural size mismatch");
        let op = self.charge_scan();
        self.count_dead_skips();
        let mut result = false;
        for (w, &word) in p.words().iter().enumerate() {
            if word & self.live_word(w) != 0 {
                result = true;
                break;
            }
        }
        self.corrupt_reduction(op, result)
    }

    /// Global AND over active PEs of a packed plural (identity `true`
    /// when none active): early-exits on the first live zero bit.
    pub fn reduce_and_bits(&mut self, p: &PluralBits) -> bool {
        if self.ghost {
            self.charge_scan();
            return true;
        }
        assert_eq!(p.len(), self.n_virt, "plural size mismatch");
        let op = self.charge_scan();
        self.count_dead_skips();
        let mut result = true;
        for (w, &word) in p.words().iter().enumerate() {
            if !word & self.live_word(w) != 0 {
                result = false;
                break;
            }
        }
        self.corrupt_reduction(op, result)
    }

    /// `selectFirst` over a packed plural: the first nonzero live word
    /// plus a `trailing_zeros` pinpoints the lowest flagged PE.
    pub fn select_first_bits(&mut self, p: &PluralBits) -> Option<usize> {
        if self.ghost {
            self.charge_scan();
            return None;
        }
        assert_eq!(p.len(), self.n_virt, "plural size mismatch");
        self.charge_scan();
        self.count_dead_skips();
        for (w, &word) in p.words().iter().enumerate() {
            let hit = word & self.live_word(w);
            if hit != 0 {
                return Some(w * 64 + hit.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Segmented `scanOr` over a packed plural — word-at-a-time over each
    /// segment's precomputed word span (see [`SegmentMap`]), with early
    /// exit on the first live hit.
    pub fn scan_or_bits(&mut self, p: &PluralBits, segs: &SegmentMap) -> PluralBits {
        self.seg_reduce_bits(p, segs, false)
    }

    /// Segmented `scanAnd` over a packed plural (identity `true`).
    pub fn scan_and_bits(&mut self, p: &PluralBits, segs: &SegmentMap) -> PluralBits {
        self.seg_reduce_bits(p, segs, true)
    }

    fn seg_reduce_bits(&mut self, p: &PluralBits, segs: &SegmentMap, identity: bool) -> PluralBits {
        if self.ghost {
            self.charge_scan();
            return self.alloc_bits(identity);
        }
        assert_eq!(p.len(), self.n_virt, "plural size mismatch");
        assert_eq!(segs.len(), self.n_virt, "segment map size mismatch");
        let op_id = self.charge_scan();
        self.count_dead_skips();
        let mut out = self.alloc_bits(identity);
        let mut dead_boundaries = 0u64;
        for s in 0..segs.num_segments() {
            let span = segs.span_of(s);
            let value = if identity {
                // AND: true unless some live active PE holds a zero bit.
                (span.first_word..=span.last_word)
                    .all(|w| !p.words()[w] & self.live_word(w) & span.mask_for(w) == 0)
            } else {
                // OR: true once any live active PE holds a set bit.
                (span.first_word..=span.last_word)
                    .any(|w| p.words()[w] & self.live_word(w) & span.mask_for(w) != 0)
            };
            let boundary = segs.start_of(s);
            if self.virt_is_dead(boundary) {
                dead_boundaries += 1;
            } else {
                out.set(boundary, value);
            }
        }
        self.stats.dead_pe_skips += dead_boundaries;
        self.apply_router_corruption_bits(op_id, &mut out);
        out
    }

    /// Routed gather of a packed boolean plural (see [`Machine::gather`]):
    /// senders and receivers are iterated via word masks, fetching one bit
    /// per live PE.
    pub fn gather_bits(&mut self, src: &PluralBits, index: &Plural<usize>, dst: &mut PluralBits) {
        if self.ghost {
            self.charge_router();
            return;
        }
        assert_eq!(src.len(), self.n_virt);
        assert_eq!(index.len(), self.n_virt);
        assert_eq!(dst.len(), self.n_virt);
        let op = self.charge_router();
        self.count_dead_skips();
        let armed = self.faults.is_some();
        let mut oob = 0u64;
        let idx = index.as_slice();
        for w in 0..bits::word_count(self.n_virt) {
            let mut m = self.live_word(w);
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                let pe = w * 64 + b;
                m &= m - 1;
                let target = idx[pe];
                if target >= src.len() {
                    assert!(armed, "router gather out of range: PE {pe} -> {target}");
                    oob += 1;
                    continue;
                }
                dst.set(pe, src.get(target));
            }
        }
        self.stats.oob_routes += oob;
        self.apply_router_corruption_bits(op, dst);
    }

    /// Routed scatter of a packed boolean plural (see
    /// [`Machine::scatter`]): applied in descending PE order so the
    /// lowest-numbered sender wins write conflicts, exactly as unpacked.
    pub fn scatter_bits(&mut self, src: &PluralBits, index: &Plural<usize>, dst: &mut PluralBits) {
        if self.ghost {
            self.charge_router();
            return;
        }
        assert_eq!(src.len(), self.n_virt);
        assert_eq!(index.len(), self.n_virt);
        assert_eq!(dst.len(), self.n_virt);
        let op = self.charge_router();
        self.count_dead_skips();
        let armed = self.faults.is_some();
        let mut oob = 0u64;
        let idx = index.as_slice();
        for w in (0..bits::word_count(self.n_virt)).rev() {
            let mut m = self.live_word(w);
            while m != 0 {
                let b = 63 - m.leading_zeros() as usize;
                let pe = w * 64 + b;
                m &= !(1u64 << b);
                let target = idx[pe];
                if target >= dst.len() {
                    assert!(armed, "router scatter out of range: PE {pe} -> {target}");
                    oob += 1;
                    continue;
                }
                // A dead receiving PE's memory cannot be written.
                if self.virt_is_dead(target) {
                    continue;
                }
                dst.set(target, src.get(pe));
            }
        }
        self.stats.oob_routes += oob;
        self.apply_router_corruption_bits(op, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtualization_factor() {
        assert_eq!(Machine::mp1(1).virt_factor(), 1);
        assert_eq!(Machine::mp1(16_384).virt_factor(), 1);
        assert_eq!(Machine::mp1(16_385).virt_factor(), 2);
        assert_eq!(Machine::mp1(40_000).virt_factor(), 3);
        // The paper's 10-word network: q²n⁴ = 4·10⁴ = 40,000 → factor 3.
    }

    #[test]
    fn par_map_runs_on_active_pes_only() {
        let mut m = Machine::mp1(8);
        m.disable_pes(&[3, 5]);
        let mut p = m.alloc(0u32);
        m.par_map(&mut p, |pe, v| *v = pe as u32 + 1);
        assert_eq!(p.as_slice(), &[1, 2, 3, 0, 5, 0, 7, 8]);
        assert_eq!(m.stats.plural_ops, 1);
        assert_eq!(m.active_count(), 6);
    }

    #[test]
    fn par_zip_and_init() {
        let mut m = Machine::mp1(4);
        let a = m.par_init(0u32, |pe| pe as u32);
        let mut b = m.alloc(100u32);
        m.par_zip(&mut b, &a, |_, dst, src| *dst += *src);
        assert_eq!(b.as_slice(), &[100, 101, 102, 103]);
    }

    #[test]
    fn activity_stack_nesting() {
        let mut m = Machine::mp1(6);
        let even = m.par_init(false, |pe| pe % 2 == 0);
        let low = m.par_init(false, |pe| pe < 4);
        let mut hits = m.alloc(0u32);
        m.with_activity(&even, |m| {
            m.with_activity(&low, |m| {
                m.par_map(&mut hits, |_, v| *v = 1);
            });
            assert_eq!(m.active_count(), 3); // 0, 2, 4
        });
        assert_eq!(m.active_count(), 6);
        assert_eq!(hits.as_slice(), &[1, 0, 1, 0, 0, 0]);
    }

    #[test]
    fn reductions_respect_activity() {
        let mut m = Machine::mp1(4);
        let p = m.par_init(false, |pe| pe == 3);
        assert!(m.reduce_or(&p));
        let mask = m.par_init(false, |pe| pe < 3);
        let inside = m.with_activity(&mask, |m| m.reduce_or(&p));
        assert!(!inside);
        let all_true = m.par_init(false, |_| true);
        assert!(m.reduce_and(&all_true));
        let sums = m.par_init(0u64, |pe| pe as u64);
        assert_eq!(m.reduce_sum(&sums), 6);
    }

    #[test]
    fn reduce_and_identity_when_none_active() {
        let mut m = Machine::mp1(4);
        let none = m.alloc(false);
        let p = m.par_init(true, |_| false);
        let r = m.with_activity(&none, |m| m.reduce_and(&p));
        assert!(r, "AND over an empty active set is the identity true");
    }

    #[test]
    fn scan_or_deposits_at_boundaries() {
        let mut m = Machine::mp1(9);
        let segs = SegmentMap::uniform(9, 3);
        let p = m.par_init(false, |pe| pe == 4 || pe == 8);
        let r = m.scan_or(&p, &segs);
        assert_eq!(
            r.as_slice(),
            &[false, false, false, true, false, false, true, false, false]
        );
        assert_eq!(m.stats.scan_calls, 1);
    }

    #[test]
    fn scan_and_skips_disabled_pes() {
        let mut m = Machine::mp1(6);
        let segs = SegmentMap::uniform(6, 3);
        // Segment 0: values T,F,T with PE 1 disabled → AND = T.
        // Segment 1: values T,T,F all enabled → AND = F.
        m.disable_pes(&[1]);
        let p = m.par_init(false, |pe| matches!(pe, 0 | 2 | 3 | 4));
        let r = m.scan_and(&p, &segs);
        assert!(r.as_slice()[0]);
        assert!(!r.as_slice()[3]);
    }

    #[test]
    fn gather_and_scatter() {
        let mut m = Machine::mp1(5);
        let src = m.par_init(0u32, |pe| pe as u32 * 10);
        let reverse = m.par_init(0usize, |pe| 4 - pe);
        let mut dst = m.alloc(0u32);
        m.gather(&src, &reverse, &mut dst);
        assert_eq!(dst.as_slice(), &[40, 30, 20, 10, 0]);
        // Scatter with a conflict: PEs 0, 1 and 2 all send to slot 0; the
        // lowest sender (PE 0) wins.
        let idx = m.par_init(0usize, |pe| if pe <= 2 { 0 } else { pe });
        let vals = m.par_init(0u32, |pe| pe as u32 + 1);
        let mut out = m.alloc(99u32);
        m.scatter(&vals, &idx, &mut out);
        assert_eq!(out.as_slice()[0], 1); // PE 0's value (pe+1 = 1)
        assert_eq!(out.as_slice()[3], 4);
        assert_eq!(m.stats.router_ops, 2);
    }

    #[test]
    fn select_first_respects_activity() {
        let mut m = Machine::mp1(6);
        let p = m.par_init(false, |pe| pe == 2 || pe == 4);
        assert_eq!(m.select_first(&p), Some(2));
        let mask = m.par_init(false, |pe| pe > 2);
        let inside = m.with_activity(&mask, |m| m.select_first(&p));
        assert_eq!(inside, Some(4));
        let none = m.alloc(false);
        assert_eq!(m.select_first(&none), None);
    }

    #[test]
    fn tracing_records_operations() {
        let mut m = Machine::mp1(8);
        assert!(m.trace().is_empty());
        m.enable_trace();
        let mut p = m.alloc(false);
        m.par_map(&mut p, |_, v| *v = true);
        let segs = SegmentMap::global(8);
        let _ = m.scan_or(&p, &segs);
        let mask = m.par_init(false, |pe| pe < 4);
        m.with_activity(&mask, |m| {
            m.par_map(&mut p, |_, v| *v = false);
        });
        let ops: Vec<&str> = m.trace().iter().map(|t| t.op).collect();
        assert!(ops.contains(&"plural"));
        assert!(ops.contains(&"scan"));
        // The op inside the narrowed activity frame saw 4 active PEs.
        let narrowed = m.trace().iter().rev().find(|t| t.op == "plural").unwrap();
        assert_eq!(narrowed.active, 4);
        // Enabling twice is idempotent.
        let len = m.trace().len();
        m.enable_trace();
        assert_eq!(m.trace().len(), len);
    }

    #[test]
    fn memory_budget_enforced() {
        let mut m = Machine::mp1(4);
        // 16 KB per PE: two 8 KB allocations fit, a third does not.
        let a = m.alloc([0u8; 8192]);
        let _b = m.alloc([0u8; 8000]);
        assert!(m.stats.peak_pe_memory_bytes >= 16192);
        m.free(a);
        let _c = m.alloc([0u8; 8192]); // fits again after free
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _d = m.alloc([0u8; 8192]);
        }));
        assert!(result.is_err(), "exceeding 16 KB per PE must fail loudly");
    }

    #[test]
    fn virtualized_ops_cost_more() {
        let mut small = Machine::mp1(100);
        let mut big = Machine::mp1(40_000); // factor 3
        let mut ps = small.alloc(0u8);
        let mut pb = big.alloc(0u8);
        small.par_map(&mut ps, |_, _| {});
        big.par_map(&mut pb, |_, _| {});
        assert_eq!(small.stats.plural_slices, 1);
        assert_eq!(big.stats.plural_slices, 3);
        assert!(big.estimated_seconds() > small.estimated_seconds());
    }

    #[test]
    fn scan_cost_is_logarithmic_in_phys_pes() {
        let mut m = Machine::mp1(16);
        let p = m.alloc(false);
        let segs = SegmentMap::global(16);
        let before = m.stats.scan_passes;
        let _ = m.scan_or(&p, &segs);
        assert_eq!(m.stats.scan_passes - before, 4); // log2(16 PEs in use)
                                                     // A program spanning the whole array pays log2(16384) per scan.
        let mut full = Machine::mp1(16_384);
        let pf = full.alloc(false);
        let sf = SegmentMap::global(16_384);
        let _ = full.scan_or(&pf, &sf);
        assert_eq!(full.stats.scan_passes, 14);
        // A virtualized program additionally pays local passes.
        let mut virt = Machine::mp1(40_000);
        let pv = virt.alloc(false);
        let sv = SegmentMap::global(40_000);
        let _ = virt.scan_or(&pv, &sv);
        assert_eq!(virt.stats.scan_passes, 16); // 14 + (3 - 1)
    }

    // --------------------------------------------------------------
    // Fault injection
    // --------------------------------------------------------------

    /// A small machine with an armed plan, for fault tests.
    fn faulty(n_virt: usize, phys: usize, plan: FaultPlan) -> Machine {
        let mut m = Machine::new(
            MachineConfig {
                phys_pes: phys,
                ..Default::default()
            },
            n_virt,
        );
        m.arm_faults(plan);
        m
    }

    #[test]
    fn op_counter_advances_on_every_broadcast() {
        let mut m = Machine::mp1(4);
        assert_eq!(m.op_count(), 0);
        let mut p = m.alloc(0u32);
        m.par_map(&mut p, |_, _| {}); // 1
        let b = m.alloc(false);
        let _ = m.reduce_or(&b); // 2
        let segs = SegmentMap::global(4);
        let _ = m.scan_or(&b, &segs); // 3
        let idx = m.par_init(0usize, |pe| pe); // 4
        let mut dst = m.alloc(0u32);
        m.gather(&p, &idx, &mut dst); // 5
        assert_eq!(m.op_count(), 5);
    }

    #[test]
    fn dead_pe_freezes_its_slot() {
        // 8 virtual PEs on 4 physical: phys 1 hosts virts 1 and 5.
        let mut m = faulty(8, 4, FaultPlan::new().with_dead_pe(1));
        let mut p = m.alloc(0u32);
        m.par_map(&mut p, |pe, v| *v = pe as u32 + 10);
        assert_eq!(p.as_slice(), &[10, 0, 12, 13, 14, 0, 16, 17]);
        assert_eq!(m.stats.dead_pe_skips, 2);
    }

    #[test]
    fn dead_pe_contributes_identity_to_scans() {
        let mut m = faulty(4, 4, FaultPlan::new().with_dead_pe(3));
        let p = m.par_init(false, |pe| pe == 3);
        // The only set flag lives on the dead PE: the OR must miss it.
        assert!(!m.reduce_or(&p));
        let sums = m.par_init(0u64, |_| 1);
        assert_eq!(m.reduce_sum(&sums), 3);
    }

    #[test]
    fn probe_detects_dead_pes_and_retire_remaps() {
        let mut m = faulty(8, 4, FaultPlan::new().with_dead_pe(1).with_dead_pe(2));
        assert_eq!(m.probe_pes(0xDEAD), vec![1, 2]);
        assert_eq!(m.retire_pes(&[1, 2]), 2);
        // All virtual PEs now live on phys {0, 3}.
        assert!(m.probe_pes(0xBEEF).is_empty());
        assert_eq!(m.phys_of(0), 0);
        assert_eq!(m.phys_of(1), 3);
        assert_eq!(m.phys_of(2), 0);
        let mut p = m.alloc(0u32);
        m.par_map(&mut p, |pe, v| *v = pe as u32 + 1);
        assert_eq!(p.as_slice(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn retire_refuses_to_empty_the_array() {
        let mut m = faulty(2, 2, FaultPlan::new().with_dead_pe(0).with_dead_pe(1));
        assert_eq!(m.retire_pes(&[0, 1]), 0);
        assert_eq!(m.healthy_count(), 2, "mapping unchanged after refusal");
    }

    #[test]
    fn memory_flip_fires_once_at_its_op() {
        // Flip bit 0 of phys 2's write during op 2.
        let mut m = faulty(4, 4, FaultPlan::new().with_memory_flip(2, 2, 0));
        let mut p = m.alloc(0u64);
        m.par_map(&mut p, |_, v| *v = 8); // op 1: untouched
        assert_eq!(p.as_slice(), &[8, 8, 8, 8]);
        m.par_map(&mut p, |_, v| *v = 8); // op 2: flip hits virt 2
        assert_eq!(p.as_slice(), &[8, 8, 9, 8]);
        assert_eq!(m.stats.memory_flips, 1);
        m.par_map(&mut p, |_, v| *v = 8); // op 3: transient is spent
        assert_eq!(p.as_slice(), &[8, 8, 8, 8]);
    }

    #[test]
    fn router_corruption_hits_gather_payload() {
        // Ops: alloc'd plurals cost nothing; par_init ×2 = ops 1-2;
        // gather = op 3.
        let mut m = faulty(4, 4, FaultPlan::new().with_router_corrupt(3, 1, 0xF0));
        let src = m.par_init(0u64, |pe| pe as u64);
        let idx = m.par_init(0usize, |pe| pe);
        let mut dst = m.alloc(0u64);
        m.gather(&src, &idx, &mut dst);
        assert_eq!(dst.as_slice(), &[0, 1 ^ 0xF0, 2, 3]);
        assert_eq!(m.stats.router_corruptions, 1);
    }

    #[test]
    fn oob_routes_drop_gracefully_under_faults() {
        let mut m = faulty(4, 4, FaultPlan::new());
        let src = m.par_init(0u64, |pe| pe as u64 + 1);
        let idx = m.par_init(0usize, |pe| if pe == 2 { 999 } else { pe });
        let mut dst = m.alloc(0u64);
        m.gather(&src, &idx, &mut dst);
        assert_eq!(dst.as_slice(), &[1, 2, 0, 4], "PE 2's fetch dropped");
        assert_eq!(m.stats.oob_routes, 1);
        let mut out = m.alloc(0u64);
        m.scatter(&src, &idx, &mut out);
        assert_eq!(m.stats.oob_routes, 2);
    }

    #[test]
    fn oob_routes_still_assert_without_faults() {
        let mut m = Machine::mp1(4);
        let src = m.par_init(0u64, |pe| pe as u64);
        let idx = m.par_init(0usize, |_| 999);
        let mut dst = m.alloc(0u64);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.gather(&src, &idx, &mut dst);
        }));
        assert!(r.is_err(), "fault-free OOB gather is a program bug");
    }

    #[test]
    fn empty_armed_plan_changes_no_results() {
        let run = |m: &mut Machine| {
            let p = m.par_init(0u64, |pe| pe as u64);
            let segs = SegmentMap::uniform(8, 4);
            let f = m.par_init(false, |pe| pe % 3 == 0);
            let or = m.scan_or(&f, &segs);
            let sum = m.reduce_sum(&p);
            (p.as_slice().to_vec(), or.as_slice().to_vec(), sum)
        };
        let mut plain = Machine::mp1(8);
        let mut armed = Machine::mp1(8);
        armed.arm_faults(FaultPlan::new());
        let a = run(&mut plain);
        let b = run(&mut armed);
        assert_eq!(a, b);
        assert_eq!(plain.stats, armed.stats, "an empty plan costs nothing");
    }

    #[test]
    fn fault_counters_flow_into_delta() {
        let mut m = faulty(4, 4, FaultPlan::new().with_dead_pe(0));
        let before = m.stats;
        let mut p = m.alloc(0u32);
        m.par_map(&mut p, |_, v| *v = 1);
        let d = m.stats.delta_since(&before);
        assert_eq!(d.dead_pe_skips, 1);
    }

    // --------------------------------------------------------------
    // Packed (bit-sliced) kernels
    // --------------------------------------------------------------

    /// Run the same broadcast program through the unpacked and the packed
    /// boolean kernels and demand identical per-PE results *and* identical
    /// [`MachineStats`] — the bit-identity bar every packed kernel must
    /// clear, with and without an armed fault plan.
    fn packed_differential(n: usize, plan: Option<FaultPlan>) {
        let fresh = |plan: &Option<FaultPlan>| {
            let mut m = Machine::new(
                MachineConfig {
                    phys_pes: 4,
                    ..Default::default()
                },
                n,
            );
            if let Some(p) = plan.clone() {
                m.arm_faults(p);
            }
            m
        };
        let mut sm = fresh(&plan);
        let mut pm = fresh(&plan);
        let want: Vec<bool> = (0..n).map(|pe| pe % 3 == 0).collect();
        let idx: Vec<usize> = (0..n).map(|pe| (pe * 7 + 1) % n).collect();
        let seg_len = (1..=n).rev().find(|l| n % l == 0 && *l <= 70).unwrap();
        let segs = SegmentMap::uniform(n, seg_len);

        // Scalar program.
        let su = sm.par_init(0u64, |pe| pe as u64);
        let mut sflags = sm.alloc(false);
        sm.par_map(&mut sflags, |pe, v| *v = want[pe]);
        let smask = sm.par_init(false, |pe| pe % 2 == 0);
        let mut sderived = sm.alloc(false);
        let mut sacc = sm.alloc(0u64);
        let (s_or, s_and, s_first) = sm.with_activity(&smask, |m| {
            m.par_zip(&mut sderived, &su, |_, d, &s| *d = s & 2 != 0);
            m.par_zip(&mut sacc, &sflags, |pe, a, &f| {
                if f {
                    *a |= 1 << (pe % 60)
                }
            });
            (
                m.reduce_or(&sflags),
                m.reduce_and(&sflags),
                m.select_first(&sflags),
            )
        });
        let s_scan_or = sm.scan_or(&sflags, &segs);
        let s_scan_and = sm.scan_and(&sderived, &segs);
        let sidx = sm.par_init(0usize, |pe| idx[pe]);
        let mut s_gath = sm.alloc(false);
        sm.gather(&sflags, &sidx, &mut s_gath);
        let mut s_scat = sm.alloc(false);
        sm.scatter(&sflags, &sidx, &mut s_scat);

        // The same program through the packed kernels.
        let pu = pm.par_init(0u64, |pe| pe as u64);
        let mut pflags = pm.alloc_bits(false);
        pm.par_write_bits(&mut pflags, &want);
        let pmask = pm.par_init_bits(false, |pe| pe % 2 == 0);
        let mut pderived = pm.alloc_bits(false);
        let mut pacc = pm.alloc(0u64);
        let (p_or, p_and, p_first) = pm.with_activity_bits(&pmask, |m| {
            m.par_map_bits(&mut pderived, &pu, |_, s| s & 2 != 0);
            m.par_zip_bits(&mut pacc, &pflags, |pe, a, f| {
                if f {
                    *a |= 1 << (pe % 60)
                }
            });
            (
                m.reduce_or_bits(&pflags),
                m.reduce_and_bits(&pflags),
                m.select_first_bits(&pflags),
            )
        });
        let p_scan_or = pm.scan_or_bits(&pflags, &segs);
        let p_scan_and = pm.scan_and_bits(&pderived, &segs);
        let pidx = pm.par_init(0usize, |pe| idx[pe]);
        let mut p_gath = pm.alloc_bits(false);
        pm.gather_bits(&pflags, &pidx, &mut p_gath);
        let mut p_scat = pm.alloc_bits(false);
        pm.scatter_bits(&pflags, &pidx, &mut p_scat);

        let ctx = format!("n={n} faults={}", plan.is_some());
        assert_eq!(pflags.to_bools(), sflags.as_slice().to_vec(), "{ctx}");
        assert_eq!(pderived.to_bools(), sderived.as_slice().to_vec(), "{ctx}");
        assert_eq!(pacc.as_slice(), sacc.as_slice(), "{ctx}");
        assert_eq!((p_or, p_and, p_first), (s_or, s_and, s_first), "{ctx}");
        assert_eq!(p_scan_or.to_bools(), s_scan_or.as_slice().to_vec(), "{ctx}");
        assert_eq!(
            p_scan_and.to_bools(),
            s_scan_and.as_slice().to_vec(),
            "{ctx}"
        );
        assert_eq!(p_gath.to_bools(), s_gath.as_slice().to_vec(), "{ctx}");
        assert_eq!(p_scat.to_bools(), s_scat.as_slice().to_vec(), "{ctx}");
        assert_eq!(sm.stats, pm.stats, "{ctx}");
        assert_eq!(sm.op_count(), pm.op_count(), "{ctx}");
    }

    #[test]
    fn packed_kernels_match_scalar_fault_free() {
        for n in [1usize, 5, 64, 65, 130] {
            packed_differential(n, None);
        }
    }

    #[test]
    fn packed_kernels_match_scalar_under_faults() {
        for n in [5usize, 64, 65, 130] {
            for seed in [1u64, 7, 42, 1234] {
                packed_differential(n, Some(FaultPlan::seeded(seed, 4, 40)));
            }
        }
    }

    #[test]
    fn packed_alloc_charges_the_same_budget() {
        // A packed plural still occupies one simulated byte per PE: the
        // 16 KB budget is a property of the MP-1 program, not of the host
        // representation.
        let mut unpacked = Machine::mp1(4);
        let mut packed = Machine::mp1(4);
        let a = unpacked.alloc(false);
        let b = packed.alloc_bits(false);
        assert_eq!(
            unpacked.stats.peak_pe_memory_bytes,
            packed.stats.peak_pe_memory_bytes
        );
        unpacked.free(a);
        packed.free_bits(b);

        // Fill the budget to one byte short with plain bytes, then both
        // representations must fail identically on the next bool.
        let budget = unpacked.config().pe_memory_bytes;
        let _pad_u = unpacked.alloc([0u8; 16 * 1024 - 1]);
        let _pad_p = packed.alloc([0u8; 16 * 1024 - 1]);
        let _last_u = unpacked.alloc(false); // exactly fits
        let _last_p = packed.alloc_bits(false);
        assert_eq!(unpacked.stats.peak_pe_memory_bytes, budget);
        assert_eq!(packed.stats.peak_pe_memory_bytes, budget);
        let grab = |r: std::thread::Result<()>| {
            let e = r.expect_err("allocation beyond 16 KB must fail");
            e.downcast_ref::<String>().unwrap().clone()
        };
        let msg_u = grab(std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || {
                let _ = unpacked.alloc(false);
            },
        )));
        let msg_p = grab(std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || {
                let _ = packed.alloc_bits(false);
            },
        )));
        assert_eq!(msg_u, msg_p, "identical budget error for both layouts");
        assert!(msg_u.contains("16 KB per PE"), "got: {msg_u}");
    }

    #[test]
    fn select_first_stops_at_the_lowest_live_hit() {
        let mut m = Machine::mp1(100);
        let p = m.par_init(false, |pe| pe >= 37); // many hits after the first
        assert_eq!(m.select_first(&p), Some(37));
        let none = m.alloc(false);
        assert_eq!(m.select_first(&none), None);
        // Narrowed activity moves the first hit.
        let mask = m.par_init(false, |pe| pe >= 50);
        let inside = m.with_activity(&mask, |m| m.select_first(&p));
        assert_eq!(inside, Some(50));
        // A dead PE can't raise its flag.
        let mut f = faulty(8, 4, FaultPlan::new().with_dead_pe(1));
        let pf = f.par_init(false, |pe| pe == 1 || pe == 5 || pe == 6);
        assert_eq!(f.select_first(&pf), Some(6), "virts 1 and 5 are dead");
        let mut fp = faulty(8, 4, FaultPlan::new().with_dead_pe(1));
        let pp = fp.par_init_bits(false, |pe| pe == 1 || pe == 5 || pe == 6);
        assert_eq!(fp.select_first_bits(&pp), Some(6));
        assert_eq!(f.stats, fp.stats);
    }

    #[test]
    fn with_activity_bits_nests_like_unpacked() {
        let mut m = Machine::mp1(6);
        let even = m.par_init_bits(false, |pe| pe % 2 == 0);
        let low = m.par_init_bits(false, |pe| pe < 4);
        let mut hits = m.alloc(0u32);
        m.with_activity_bits(&even, |m| {
            m.with_activity_bits(&low, |m| {
                m.par_map(&mut hits, |_, v| *v = 1);
            });
            assert_eq!(m.active_count(), 3); // 0, 2, 4
        });
        assert_eq!(m.active_count(), 6);
        assert_eq!(hits.as_slice(), &[1, 0, 1, 0, 0, 0]);
    }

    #[test]
    fn packed_dead_pe_freezes_its_bit() {
        // 8 virtual PEs on 4 physical: phys 1 hosts virts 1 and 5.
        let mut m = faulty(8, 4, FaultPlan::new().with_dead_pe(1));
        let mut p = m.alloc_bits(false);
        let want = vec![true; 8];
        m.par_write_bits(&mut p, &want);
        assert_eq!(
            p.to_bools(),
            [true, false, true, true, true, false, true, true]
        );
        assert_eq!(m.stats.dead_pe_skips, 2);
        // ...and a dead boundary PE swallows its segment's scan deposit:
        // segment 1 starts at virt 1, which lives on dead phys 1.
        let segs = SegmentMap::from_lengths(&[1, 3, 4]);
        let or = m.scan_or_bits(&p, &segs);
        assert!(or.get(0), "segment 0's boundary (virt 0) is healthy");
        assert!(!or.get(1), "segment 1 ORs to true but its boundary is dead");
        assert!(or.get(4), "segment 2's boundary (virt 4) is healthy");
    }

    #[test]
    fn packed_memory_flip_always_flips_the_bit() {
        // Flip during op 2 on phys 2: a 1-bit simulated word always flips
        // regardless of which bit index the plan drew.
        for bit in [0u32, 3, 63] {
            let mut m = faulty(4, 4, FaultPlan::new().with_memory_flip(2, 2, bit));
            let mut p = m.alloc_bits(false);
            let want = vec![true; 4];
            m.par_write_bits(&mut p, &want); // op 1: untouched
            assert_eq!(p.to_bools(), [true; 4]);
            m.par_write_bits(&mut p, &want); // op 2: flip hits virt 2
            assert_eq!(p.to_bools(), [true, true, false, true], "bit={bit}");
            assert_eq!(m.stats.memory_flips, 1);
            m.par_write_bits(&mut p, &want); // op 3: transient is spent
            assert_eq!(p.to_bools(), [true; 4]);
        }
    }

    #[test]
    fn packed_router_corruption_flips_on_odd_masks_only() {
        // A boolean payload XORs with the mask's low bit (FaultWord for
        // bool), but the corruption event is counted either way.
        for (mask, flipped) in [(0x01u64, true), (0xF0, false)] {
            let mut m = faulty(4, 4, FaultPlan::new().with_router_corrupt(3, 1, mask));
            let src = m.par_init_bits(false, |_| false);
            let idx = m.par_init(0usize, |pe| pe);
            let mut dst = m.alloc_bits(false);
            m.gather_bits(&src, &idx, &mut dst); // op 3
            assert_eq!(dst.get(1), flipped, "mask={mask:#x}");
            assert_eq!(m.stats.router_corruptions, 1);
        }
    }

    #[test]
    fn packed_scatter_lowest_sender_wins_and_oob_drops() {
        let mut m = faulty(4, 4, FaultPlan::new());
        // PEs 0 and 2 both target slot 1: the lowest sender's value wins.
        let src = m.par_init_bits(false, |pe| pe == 0);
        let idx = m.par_init(0usize, |pe| if pe == 3 { 999 } else { 1 });
        let mut dst = m.alloc_bits(false);
        m.scatter_bits(&src, &idx, &mut dst);
        assert!(dst.get(1), "PE 0's true beats PE 2's false");
        assert_eq!(m.stats.oob_routes, 1, "PE 3's route dropped");
        let mut out = m.alloc_bits(false);
        let idx_oob = m.par_init(0usize, |_| 999);
        m.gather_bits(&src, &idx_oob, &mut out);
        assert_eq!(m.stats.oob_routes, 5);
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    fn packed_oob_routes_still_assert_without_faults() {
        let mut m = Machine::mp1(4);
        let src = m.par_init_bits(false, |_| true);
        let idx = m.par_init(0usize, |_| 999);
        let mut dst = m.alloc_bits(false);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.gather_bits(&src, &idx, &mut dst);
        }));
        assert!(r.is_err(), "fault-free OOB gather is a program bug");
    }

    /// One representative program exercising every op family, run on a
    /// real machine and replayed on a ghost: charges must be identical.
    fn stats_program(m: &mut Machine) -> Vec<u64> {
        let mut reductions = Vec::new();
        let segs = SegmentMap::uniform(m.n_virt(), m.n_virt() / 2);
        let flags = m.par_init(false, |pe| pe % 3 == 0);
        let mut counts = m.alloc(0u64);
        m.with_activity(&flags, |m| {
            m.par_map(&mut counts, |pe, v| *v = pe as u64);
        });
        reductions.push(m.reduce_sum(&counts));
        let packed = m.par_init_bits(false, |pe| pe % 2 == 0);
        let reduced = m.with_activity_bits(&packed, |m| m.scan_or_bits(&packed, &segs));
        let idx = m.par_init(0usize, |pe| pe / 2);
        let mut fetched = m.alloc_bits(false);
        m.gather_bits(&reduced, &idx, &mut fetched);
        let mut lost = m.alloc(0u64);
        m.par_zip_bits(&mut lost, &fetched, |_, out, b| *out = b as u64);
        reductions.push(m.reduce_sum(&lost));
        m.free(lost);
        m.free_bits(fetched);
        m.free_bits(reduced);
        m.free_bits(packed);
        m.free(counts);
        m.free(flags);
        reductions
    }

    #[test]
    fn ghost_replay_charges_identically() {
        let mut real = Machine::new(
            MachineConfig {
                phys_pes: 4,
                ..Default::default()
            },
            10,
        );
        let reductions = stats_program(&mut real);

        let mut ghost = Machine::new_ghost(
            MachineConfig {
                phys_pes: 4,
                ..Default::default()
            },
            10,
        );
        assert!(ghost.is_ghost());
        ghost.push_ghost_reductions(&reductions);
        let replayed = stats_program(&mut ghost);

        assert_eq!(real.stats, ghost.stats);
        assert_eq!(real.op_count(), ghost.op_count());
        assert_eq!(replayed, reductions, "queued reductions replay in order");
        assert!(ghost.leftover_ghost_reductions().is_empty());
        assert_eq!(real.estimated_seconds(), ghost.estimated_seconds());
    }
}
