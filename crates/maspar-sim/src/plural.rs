//! Plural values: one `T` per virtual PE.

/// A *plural* value in MPL terms — an array with one element per virtual
/// PE, conceptually living in PE-local memory. Allocate through
/// [`crate::Machine::alloc`] so the 16 KB-per-PE budget is tracked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plural<T> {
    data: Vec<T>,
}

impl<T> Plural<T> {
    pub(crate) fn from_vec(data: Vec<T>) -> Self {
        Plural { data }
    }

    /// Number of virtual PEs.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read one PE's slot (host-side readback; free in the cost model,
    /// matching the ACU's ability to read PE registers).
    pub fn get(&self, pe: usize) -> &T {
        &self.data[pe]
    }

    /// Host-side raw view (readback of the whole array).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    pub(crate) fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let p = Plural::from_vec(vec![1, 2, 3]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(*p.get(1), 2);
        assert_eq!(p.as_slice(), &[1, 2, 3]);
        let q: Plural<u8> = Plural::from_vec(vec![]);
        assert!(q.is_empty());
    }
}
