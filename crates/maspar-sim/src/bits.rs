//! Packed boolean plurals: 64 virtual PEs per `u64` word.
//!
//! The MP-1's PEs are 4-bit bit-serial processors, and PARSEC's hot loops
//! are machine-wide boolean operations. [`PluralBits`] is the bit-sliced
//! representation of a `Plural<bool>`: bit `pe % 64` of word `pe / 64`
//! holds PE `pe`'s value, so one host word-op executes 64 simulated PEs —
//! genuine host-SIMD execution of the simulated SIMD machine. The machine
//! keeps its enable/activity and dead-PE masks in the same packed form, so
//! the word-parallel kernels in [`crate::Machine`] (`par_write_bits`,
//! `scan_or_bits`, `reduce_or_bits`, `select_first_bits`, ...) mask
//! activity, deadness and data with plain bitwise ops.
//!
//! Invariant: bits at positions `len..` of the last word are always zero,
//! so popcounts and word scans never see ghost PEs.
//!
//! Like [`crate::Plural`], construction goes through the machine
//! ([`crate::Machine::alloc_bits`]) so the 16 KB-per-PE budget is charged
//! — one simulated byte per PE, exactly what the unpacked `Plural<bool>`
//! costs, because the *simulated* memory footprint is a property of the
//! program, not of the host representation.

/// Words needed to hold `len` bits.
pub(crate) fn word_count(len: usize) -> usize {
    len.div_ceil(64)
}

/// Mask of the valid bits in the last word of a `len`-bit vector.
pub(crate) fn tail_mask(len: usize) -> u64 {
    match len % 64 {
        0 => !0,
        r => (1u64 << r) - 1,
    }
}

/// Is PE `pe` live given packed enable and dead masks (`dead` may be empty
/// — the fault-free fast path)?
#[inline]
pub(crate) fn live_at(enabled: &[u64], dead: &[u64], pe: usize) -> bool {
    let (w, b) = (pe / 64, pe % 64);
    enabled[w] >> b & 1 == 1 && (dead.is_empty() || dead[w] >> b & 1 == 0)
}

/// A packed boolean plural: one bit per virtual PE, 64 PEs per word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PluralBits {
    words: Vec<u64>,
    len: usize,
}

impl PluralBits {
    /// All PEs set to `v`. Allocate through [`crate::Machine::alloc_bits`].
    pub(crate) fn filled(len: usize, v: bool) -> Self {
        let mut words = vec![if v { !0u64 } else { 0 }; word_count(len)];
        if v {
            if let Some(last) = words.last_mut() {
                *last &= tail_mask(len);
            }
        }
        PluralBits { words, len }
    }

    /// Number of virtual PEs.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read one PE's bit (host-side readback, free in the cost model).
    pub fn get(&self, pe: usize) -> bool {
        assert!(
            pe < self.len,
            "PE {pe} outside packed plural of {}",
            self.len
        );
        self.words[pe / 64] >> (pe % 64) & 1 == 1
    }

    /// PEs whose bit is set.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Host-side raw view of the packed words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    pub(crate) fn set(&mut self, pe: usize, v: bool) {
        debug_assert!(pe < self.len);
        let (w, b) = (pe / 64, pe % 64);
        if v {
            self.words[w] |= 1u64 << b;
        } else {
            self.words[w] &= !(1u64 << b);
        }
    }

    /// Flip one PE's bit (the packed form of a `bool` memory-word fault —
    /// a 1-bit word always flips, see [`crate::fault::FaultWord`]).
    pub(crate) fn flip(&mut self, pe: usize) {
        debug_assert!(pe < self.len);
        self.words[pe / 64] ^= 1u64 << (pe % 64);
    }

    /// Unpack to one bool per PE (differential-testing readback).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|pe| self.get(pe)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_helpers() {
        assert_eq!(word_count(0), 0);
        assert_eq!(word_count(1), 1);
        assert_eq!(word_count(64), 1);
        assert_eq!(word_count(65), 2);
        assert_eq!(tail_mask(64), !0);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(65), 1);
        assert_eq!(tail_mask(3), 0b111);
    }

    #[test]
    fn filled_keeps_tail_bits_zero() {
        let p = PluralBits::filled(70, true);
        assert_eq!(p.len(), 70);
        assert_eq!(p.count_ones(), 70);
        assert_eq!(p.words()[1], tail_mask(70));
        let q = PluralBits::filled(70, false);
        assert_eq!(q.count_ones(), 0);
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut p = PluralBits::filled(100, false);
        p.set(0, true);
        p.set(64, true);
        p.set(99, true);
        assert!(p.get(0) && p.get(64) && p.get(99));
        assert!(!p.get(1));
        assert_eq!(p.count_ones(), 3);
        p.flip(64);
        assert!(!p.get(64));
        p.set(0, false);
        assert_eq!(p.count_ones(), 1);
        assert_eq!(p.to_bools().iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn live_at_handles_empty_dead_mask() {
        let enabled = vec![0b101u64];
        assert!(live_at(&enabled, &[], 0));
        assert!(!live_at(&enabled, &[], 1));
        assert!(live_at(&enabled, &[], 2));
        let dead = vec![0b100u64];
        assert!(live_at(&enabled, &dead, 0));
        assert!(!live_at(&enabled, &dead, 2));
    }
}
