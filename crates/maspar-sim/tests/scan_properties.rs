//! Property tests: the machine's scans, reductions, router operations,
//! and X-Net shifts against straightforward host-side references, under
//! arbitrary segment geometry and activity sets.

use maspar_sim::{Machine, SegmentMap};
use proptest::prelude::*;

/// Arbitrary segment lengths (1..=6 each) totalling ≤ 60 PEs.
fn arb_segments() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..6, 1..12)
}

proptest! {
    #[test]
    fn scan_or_matches_reference(
        lengths in arb_segments(),
        seed in any::<u64>(),
    ) {
        let total: usize = lengths.iter().sum();
        let segs = SegmentMap::from_lengths(&lengths);
        let mut m = Machine::mp1(total);
        // Pseudo-random data and activity from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 62
        };
        let data: Vec<bool> = (0..total).map(|_| next() & 1 == 1).collect();
        let active: Vec<bool> = (0..total).map(|_| next() & 1 == 1).collect();
        let p = {
            let data = data.clone();
            m.par_init(false, move |pe| data[pe])
        };
        let mask = {
            let active = active.clone();
            m.par_init(false, move |pe| active[pe])
        };
        let result = m.with_activity(&mask, |m| m.scan_or(&p, &segs));
        for s in 0..segs.num_segments() {
            let expect = segs.range_of(s).any(|pe| active[pe] && data[pe]);
            prop_assert_eq!(*result.get(segs.start_of(s)), expect, "segment {}", s);
            // Non-boundary slots are identity.
            for pe in segs.range_of(s).skip(1) {
                prop_assert!(!result.get(pe));
            }
        }
    }

    #[test]
    fn scan_and_matches_reference(
        lengths in arb_segments(),
        seed in any::<u64>(),
    ) {
        let total: usize = lengths.iter().sum();
        let segs = SegmentMap::from_lengths(&lengths);
        let mut m = Machine::mp1(total);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 62
        };
        let data: Vec<bool> = (0..total).map(|_| next() & 1 == 1).collect();
        let active: Vec<bool> = (0..total).map(|_| next() & 1 == 1).collect();
        let p = {
            let data = data.clone();
            m.par_init(false, move |pe| data[pe])
        };
        let mask = {
            let active = active.clone();
            m.par_init(false, move |pe| active[pe])
        };
        let result = m.with_activity(&mask, |m| m.scan_and(&p, &segs));
        for s in 0..segs.num_segments() {
            // AND over *active* PEs, identity true when none active.
            let expect = segs.range_of(s).filter(|&pe| active[pe]).all(|pe| data[pe]);
            prop_assert_eq!(*result.get(segs.start_of(s)), expect, "segment {}", s);
        }
    }

    #[test]
    fn scan_add_is_an_inclusive_prefix_sum(
        lengths in arb_segments(),
        values in proptest::collection::vec(0u64..100, 60),
    ) {
        let total: usize = lengths.iter().sum();
        let segs = SegmentMap::from_lengths(&lengths);
        let mut m = Machine::mp1(total);
        let vals = values[..total].to_vec();
        let p = {
            let vals = vals.clone();
            m.par_init(0u64, move |pe| vals[pe])
        };
        let result = m.scan_add(&p, &segs);
        for s in 0..segs.num_segments() {
            let mut acc = 0;
            for pe in segs.range_of(s) {
                acc += vals[pe];
                prop_assert_eq!(*result.get(pe), acc);
            }
        }
    }

    #[test]
    fn gather_matches_reference(
        n in 1usize..50,
        seed in any::<u64>(),
    ) {
        let mut m = Machine::mp1(n);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let src_vals: Vec<u64> = (0..n).map(|_| next()).collect();
        let idx_vals: Vec<usize> = (0..n).map(|_| next() as usize % n).collect();
        let src = {
            let v = src_vals.clone();
            m.par_init(0u64, move |pe| v[pe])
        };
        let idx = {
            let v = idx_vals.clone();
            m.par_init(0usize, move |pe| v[pe])
        };
        let mut dst = m.alloc(0u64);
        m.gather(&src, &idx, &mut dst);
        for pe in 0..n {
            prop_assert_eq!(*dst.get(pe), src_vals[idx_vals[pe]]);
        }
    }

    #[test]
    fn xnet_shift_matches_reference(
        n in 1usize..40,
        offset in -10isize..10,
        seed in any::<u64>(),
    ) {
        let mut m = Machine::mp1(n);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let vals: Vec<u64> = (0..n).map(|_| next()).collect();
        let src = {
            let v = vals.clone();
            m.par_init(0u64, move |pe| v[pe])
        };
        let mut wrapped = m.alloc(0u64);
        m.xnet_shift(&src, offset, maspar_sim::Edge::Wrap, 0, &mut wrapped);
        for pe in 0..n {
            let from = (pe as isize - offset).rem_euclid(n as isize) as usize;
            prop_assert_eq!(*wrapped.get(pe), vals[from]);
        }
        let mut filled = m.alloc(0u64);
        m.xnet_shift(&src, offset, maspar_sim::Edge::Fill, 777, &mut filled);
        for pe in 0..n {
            let from = pe as isize - offset;
            let expect = if (0..n as isize).contains(&from) {
                vals[from as usize]
            } else {
                777
            };
            prop_assert_eq!(*filled.get(pe), expect);
        }
    }

    #[test]
    fn reductions_match_reference(
        n in 1usize..60,
        seed in any::<u64>(),
    ) {
        let mut m = Machine::mp1(n);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 62
        };
        let data: Vec<bool> = (0..n).map(|_| next() & 1 == 1).collect();
        let p = {
            let d = data.clone();
            m.par_init(false, move |pe| d[pe])
        };
        prop_assert_eq!(m.reduce_or(&p), data.iter().any(|&b| b));
        prop_assert_eq!(m.reduce_and(&p), data.iter().all(|&b| b));
        let sums = m.par_init(0u64, |pe| pe as u64);
        prop_assert_eq!(m.reduce_sum(&sums), (0..n as u64).sum::<u64>());
    }
}
