//! Sequential CKY — the O(|R|·n³) CFG baseline.

use crate::grammar::{CnfGrammar, Nt};

/// Operation counts for scaling fits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CkyStats {
    /// Rule applications attempted (the n³ quantity).
    pub rule_checks: usize,
    /// Chart cells filled.
    pub cells: usize,
}

/// Triangular chart: `masks[len-1][i]` is the nonterminal mask spanning
/// `i .. i+len`.
pub(crate) fn build_chart(
    grammar: &CnfGrammar,
    tokens: &[usize],
    stats: &mut CkyStats,
) -> Vec<Vec<u64>> {
    let n = tokens.len();
    let mut chart: Vec<Vec<u64>> = Vec::with_capacity(n);
    chart.push(tokens.iter().map(|&t| grammar.lexical_mask(t)).collect());
    stats.cells += n;
    for len in 2..=n {
        let mut row = vec![0u64; n - len + 1];
        for (i, slot) in row.iter_mut().enumerate() {
            let mut mask = 0u64;
            for split in 1..len {
                let left = chart[split - 1][i];
                let right = chart[len - split - 1][i + split];
                if left == 0 || right == 0 {
                    stats.rule_checks += 1;
                    continue;
                }
                for (a_bit, b, c) in grammar.rules_for_cky() {
                    stats.rule_checks += 1;
                    if left >> b.0 & 1 == 1 && right >> c.0 & 1 == 1 {
                        mask |= a_bit;
                    }
                }
            }
            *slot = mask;
            stats.cells += 1;
        }
        chart.push(row);
    }
    chart
}

/// Does the grammar derive `tokens`? Returns the decision and op counts.
///
/// ```
/// let g = cfg_baseline::gen::anbn_cfg();
/// let tokens = g.tokenize("a a b b").unwrap();
/// let (accepted, stats) = cfg_baseline::cky_recognize(&g, &tokens);
/// assert!(accepted);
/// assert!(stats.rule_checks > 0);
/// ```
pub fn cky_recognize(grammar: &CnfGrammar, tokens: &[usize]) -> (bool, CkyStats) {
    if tokens.is_empty() {
        return (false, CkyStats::default());
    }
    let mut stats = CkyStats::default();
    let chart = build_chart(grammar, tokens, &mut stats);
    let accepted = chart[tokens.len() - 1][0] >> grammar.start().0 & 1 == 1;
    (accepted, stats)
}

/// A parse tree over terminal indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTree {
    Leaf(Nt, usize),
    Node(Nt, Box<ParseTree>, Box<ParseTree>),
}

impl ParseTree {
    /// Root nonterminal.
    pub fn root(&self) -> Nt {
        match self {
            ParseTree::Leaf(nt, _) | ParseTree::Node(nt, _, _) => *nt,
        }
    }

    /// The terminal yield, left to right.
    pub fn leaves(&self) -> Vec<usize> {
        match self {
            ParseTree::Leaf(_, t) => vec![*t],
            ParseTree::Node(_, l, r) => {
                let mut out = l.leaves();
                out.extend(r.leaves());
                out
            }
        }
    }

    /// Render as a bracketed string.
    pub fn render(&self, grammar: &CnfGrammar) -> String {
        match self {
            ParseTree::Leaf(nt, t) => {
                format!("({} {})", grammar.nt_name(*nt), grammar.terminal_name(*t))
            }
            ParseTree::Node(nt, l, r) => format!(
                "({} {} {})",
                grammar.nt_name(*nt),
                l.render(grammar),
                r.render(grammar)
            ),
        }
    }

    /// Check this tree is a valid derivation of `tokens` under `grammar`.
    pub fn validates(&self, grammar: &CnfGrammar, tokens: &[usize]) -> bool {
        if self.leaves() != tokens {
            return false;
        }
        self.rules_ok(grammar)
    }

    fn rules_ok(&self, grammar: &CnfGrammar) -> bool {
        match self {
            ParseTree::Leaf(nt, t) => grammar.lexical_mask(*t) >> nt.0 & 1 == 1,
            ParseTree::Node(nt, l, r) => {
                grammar
                    .binary_rules()
                    .iter()
                    .any(|&(a, b, c)| a == *nt && b == l.root() && c == r.root())
                    && l.rules_ok(grammar)
                    && r.rules_ok(grammar)
            }
        }
    }
}

/// Parse: returns one derivation tree if the sentence is in the language.
pub fn cky_parse(grammar: &CnfGrammar, tokens: &[usize]) -> Option<ParseTree> {
    if tokens.is_empty() {
        return None;
    }
    let mut stats = CkyStats::default();
    let chart = build_chart(grammar, tokens, &mut stats);
    if chart[tokens.len() - 1][0] >> grammar.start().0 & 1 != 1 {
        return None;
    }
    Some(extract(
        grammar,
        &chart,
        tokens,
        grammar.start(),
        0,
        tokens.len(),
    ))
}

fn extract(
    grammar: &CnfGrammar,
    chart: &[Vec<u64>],
    tokens: &[usize],
    nt: Nt,
    i: usize,
    len: usize,
) -> ParseTree {
    if len == 1 {
        return ParseTree::Leaf(nt, tokens[i]);
    }
    for split in 1..len {
        let left = chart[split - 1][i];
        let right = chart[len - split - 1][i + split];
        for &(a, b, c) in grammar.binary_rules() {
            if a == nt && left >> b.0 & 1 == 1 && right >> c.0 & 1 == 1 {
                let l = extract(grammar, chart, tokens, b, i, split);
                let r = extract(grammar, chart, tokens, c, i + split, len - split);
                return ParseTree::Node(nt, Box::new(l), Box::new(r));
            }
        }
    }
    unreachable!("chart bit set without a deriving rule");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn anbn_membership() {
        let g = gen::anbn_cfg();
        for (s, expect) in [
            ("a b", true),
            ("a a b b", true),
            ("a a a b b b", true),
            ("a", false),
            ("b a", false),
            ("a b a b", false),
            ("a a b", false),
        ] {
            let toks = g.tokenize(s).unwrap();
            let (got, _) = cky_recognize(&g, &toks);
            assert_eq!(got, expect, "`{s}`");
        }
    }

    #[test]
    fn empty_input_rejected() {
        let g = gen::anbn_cfg();
        assert!(!cky_recognize(&g, &[]).0);
        assert!(cky_parse(&g, &[]).is_none());
    }

    #[test]
    fn parse_tree_is_a_valid_derivation() {
        let g = gen::anbn_cfg();
        let toks = g.tokenize("a a a b b b").unwrap();
        let tree = cky_parse(&g, &toks).unwrap();
        assert!(tree.validates(&g, &toks));
        assert_eq!(tree.root(), g.start());
        let rendered = tree.render(&g);
        assert!(rendered.starts_with("(S"));
    }

    #[test]
    fn english_cfg_parses() {
        let g = gen::english_cfg();
        let toks = g.tokenize("the dog sees a cat").unwrap();
        let (ok, _) = cky_recognize(&g, &toks);
        assert!(ok);
        let tree = cky_parse(&g, &toks).unwrap();
        assert!(tree.validates(&g, &toks));
        let toks = g.tokenize("dog the sees").unwrap();
        assert!(!cky_recognize(&g, &toks).0);
    }

    #[test]
    fn rule_checks_grow_cubically() {
        let g = gen::anbn_cfg();
        let ops = |n: usize| {
            let s = format!("{}{}", "a ".repeat(n), "b ".repeat(n));
            let toks = g.tokenize(&s).unwrap();
            cky_recognize(&g, &toks).1.rule_checks as f64
        };
        let r = ops(16) / ops(8);
        assert!((5.0..12.0).contains(&r), "ops should grow ~n³: ratio {r}");
    }

    #[test]
    fn brackets_membership() {
        let g = gen::brackets_cfg();
        for (s, expect) in [
            ("( )", true),
            ("( ( ) )", true),
            ("( ) ( )", true),
            ("(", false),
            (") (", false),
            ("( ( )", false),
        ] {
            let toks = g.tokenize(s).unwrap();
            assert_eq!(cky_recognize(&g, &toks).0, expect, "`{s}`");
        }
    }
}
