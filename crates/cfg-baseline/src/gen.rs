//! Fixed and random CNF grammars, plus sentence samplers.

use crate::grammar::{CnfBuilder, CnfGrammar, Expansion, Nt};
use rand::Rng;

/// {aⁿbⁿ : n ≥ 1} in CNF: S → A B | A T; T → S B; A → a; B → b.
/// The same language as the CDG grammar `cdg_grammar::grammars::formal::
/// anbn_grammar`, used for cross-engine validation.
pub fn anbn_cfg() -> CnfGrammar {
    let mut b = CnfBuilder::new("anbn");
    b.start("S")
        .rule("S", "A", "B")
        .rule("S", "A", "T")
        .rule("T", "S", "B")
        .lex("A", "a")
        .lex("B", "b");
    b.build().expect("anbn CFG is well-formed")
}

/// Nonempty balanced single-type brackets (Dyck-1) in CNF:
/// S → L R | L T | S S; T → S R; L → (; R → ).
pub fn brackets_cfg() -> CnfGrammar {
    let mut b = CnfBuilder::new("brackets");
    b.start("S")
        .rule("S", "L", "R")
        .rule("S", "L", "T")
        .rule("S", "S", "S")
        .rule("T", "S", "R")
        .lex("L", "(")
        .lex("R", ")");
    b.build().expect("brackets CFG is well-formed")
}

/// A toy English CFG covering the same constructions as the CDG English
/// grammar's core: S → NP VP, transitive/intransitive verbs, determiners,
/// adjectives, and PP attachment (ambiguously, as in the CDG version).
pub fn english_cfg() -> CnfGrammar {
    let mut b = CnfBuilder::new("english");
    b.start("S");
    b.rule("S", "NP", "VP");
    // NP → Det Nom | Det N ; Nom → Adj Nom handled via binary chains.
    b.rule("NP", "Det", "Nom");
    b.rule("Nom", "Adj", "Nom");
    b.rule("NP", "NP", "PP");
    b.rule("VP", "V", "NP");
    b.rule("VP", "VP", "PP");
    b.rule("VP", "VP", "Adv");
    b.rule("PP", "P", "NP");
    // Lexical heads — the same vocabulary the `corpus` generator draws
    // from, so Figure 8 can run both parser families on identical
    // sentences.
    for d in ["the", "a", "this", "every"] {
        b.lex("Det", d);
    }
    for n in [
        "dog",
        "cat",
        "park",
        "telescope",
        "man",
        "program",
        "parser",
        "machine",
        "table",
        "sentence",
        "child",
    ] {
        b.lex("Nom", n);
    }
    for v in ["sees", "likes", "finds", "watches"] {
        b.lex("V", v);
        // English drops objects freely ("the dog sees"), so transitive
        // verbs double as VPs, like the CDG grammar's optional OBJ.
        b.lex("VP", v);
    }
    // Intransitive verbs make a VP on their own.
    for v in ["runs", "sleeps", "halts"] {
        b.lex("VP", v);
    }
    for a in ["big", "red", "old", "small", "fast"] {
        b.lex("Adj", a);
    }
    for p in ["in", "on", "near", "with"] {
        b.lex("P", p);
    }
    for adv in ["quickly", "often", "slowly"] {
        b.lex("Adv", adv);
    }
    b.build().expect("english CFG is well-formed")
}

/// A seeded random CNF grammar with `nts` nonterminals, `rules` binary
/// rules, and `terminals` terminal symbols. Every nonterminal gets at
/// least one lexical rule so derivations terminate.
pub fn random_cnf<R: Rng>(rng: &mut R, nts: usize, rules: usize, terminals: usize) -> CnfGrammar {
    assert!((1..=64).contains(&nts) && terminals >= 1);
    let mut b = CnfBuilder::new("random");
    let nt_name = |i: usize| format!("N{i}");
    let t_name = |i: usize| format!("t{i}");
    b.start(&nt_name(0));
    for i in 0..nts {
        let t = rng.gen_range(0..terminals);
        b.lex(&nt_name(i), &t_name(t));
    }
    for _ in 0..rules {
        let a = rng.gen_range(0..nts);
        let c1 = rng.gen_range(0..nts);
        let c2 = rng.gen_range(0..nts);
        b.rule(&nt_name(a), &nt_name(c1), &nt_name(c2));
    }
    // Make sure every terminal symbol exists even if unused by lex above.
    for t in 0..terminals {
        b.lex(&nt_name(rng.gen_range(0..nts)), &t_name(t));
    }
    b.build()
        .expect("random CNF is well-formed by construction")
}

/// Sample a derivable sentence from the grammar by stochastic top-down
/// expansion, biased toward terminals as depth grows so strings stay
/// short. Returns terminal indices, or `None` if the budget ran out.
pub fn sample_sentence<R: Rng>(
    grammar: &CnfGrammar,
    rng: &mut R,
    max_len: usize,
) -> Option<Vec<usize>> {
    let expansions = grammar.expansions();
    let mut out = Vec::new();
    let mut stack = vec![(grammar.start(), 0usize)];
    let mut budget = max_len * 8;
    while let Some((nt, depth)) = stack.pop() {
        if out.len() > max_len || budget == 0 {
            return None;
        }
        budget -= 1;
        let options = expansions.get(&nt)?;
        let terminals: Vec<&Expansion> = options
            .iter()
            .filter(|e| matches!(e, Expansion::Terminal(_)))
            .collect();
        let pairs: Vec<&Expansion> = options
            .iter()
            .filter(|e| matches!(e, Expansion::Pair(_, _)))
            .collect();
        // Bias toward terminals as the expansion deepens.
        let use_terminal =
            !terminals.is_empty() && (pairs.is_empty() || rng.gen_range(0..depth + 2) > 0);
        let choice: &Expansion = if use_terminal {
            terminals[rng.gen_range(0..terminals.len())]
        } else if !pairs.is_empty() {
            pairs[rng.gen_range(0..pairs.len())]
        } else {
            return None;
        };
        match *choice {
            Expansion::Terminal(t) => out.push(t),
            Expansion::Pair(b, c) => {
                // Push right child first so the left expands first.
                stack.push((c, depth + 1));
                stack.push((b, depth + 1));
            }
        }
    }
    (!out.is_empty() && out.len() <= max_len).then_some(out)
}

/// Helper for benchmarks: the unique Nt whose name is given (panics if
/// missing — fixed grammars only).
pub fn nt_by_name(grammar: &CnfGrammar, name: &str) -> Nt {
    (0..grammar.num_nonterminals() as u8)
        .map(Nt)
        .find(|&nt| grammar.nt_name(nt) == name)
        .unwrap_or_else(|| panic!("no nonterminal `{name}` in {}", grammar.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cky::cky_recognize;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_grammars_build() {
        assert_eq!(anbn_cfg().num_nonterminals(), 4);
        assert!(english_cfg().num_rules() > 20);
        assert_eq!(brackets_cfg().num_terminals(), 2);
    }

    #[test]
    fn sampled_sentences_are_in_the_language() {
        let mut rng = SmallRng::seed_from_u64(42);
        for g in [anbn_cfg(), brackets_cfg(), english_cfg()] {
            let mut found = 0;
            for _ in 0..60 {
                if let Some(tokens) = sample_sentence(&g, &mut rng, 12) {
                    found += 1;
                    let (ok, _) = cky_recognize(&g, &tokens);
                    assert!(ok, "sampled string must be derivable ({})", g.name());
                }
            }
            assert!(
                found > 5,
                "sampler should succeed sometimes for {}",
                g.name()
            );
        }
    }

    #[test]
    fn random_grammars_always_terminate_sampling() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10 {
            let g = random_cnf(&mut rng, 6, 12, 4);
            // Sampling may fail, but must not loop forever or panic.
            let _ = sample_sentence(&g, &mut rng, 10);
            assert!(g.num_rules() >= 6);
        }
    }

    #[test]
    fn determinism_under_seed() {
        let g = english_cfg();
        let a = sample_sentence(&g, &mut SmallRng::seed_from_u64(5), 12);
        let b = sample_sentence(&g, &mut SmallRng::seed_from_u64(5), 12);
        assert_eq!(a, b);
    }

    #[test]
    fn nt_by_name_finds() {
        let g = anbn_cfg();
        assert_eq!(g.nt_name(nt_by_name(&g, "T")), "T");
    }

    #[test]
    #[should_panic(expected = "no nonterminal")]
    fn nt_by_name_panics_on_missing() {
        nt_by_name(&anbn_cfg(), "ZZZ");
    }
}
