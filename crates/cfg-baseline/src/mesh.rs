//! Systolic-sweep CKY — the "2D Mesh / 2D Cellular Automata" CFG rows of
//! Figure 8 (after Kosaraju 1975).
//!
//! The chart is laid out on an O(n²) cell array. Each synchronous sweep,
//! every cell recomputes its nonterminal mask from the *current* contents
//! of the cells it depends on (all ways of splitting its span). Masks only
//! grow, so the computation reaches a fixpoint; the number of sweeps until
//! nothing changes is the measured mesh time. Information must propagate
//! from length-1 spans to the length-n span, so the fixpoint needs Θ(n)
//! sweeps — matching the O(k·n) / O(n) time of the table's mesh rows.

use crate::grammar::CnfGrammar;

/// Step counts from a mesh run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeshCkyStats {
    /// Cells in the array: n(n+1)/2 occupied, O(n²).
    pub cells: usize,
    /// Synchronous sweeps until fixpoint (the measured mesh time, Θ(n)).
    pub sweeps: usize,
    /// Per-sweep work of one cell (rule set size × split positions ≤ n).
    pub max_cell_work: usize,
}

/// Recognize by synchronous sweeps to fixpoint.
pub fn mesh_recognize(grammar: &CnfGrammar, tokens: &[usize]) -> (bool, MeshCkyStats) {
    if tokens.is_empty() {
        return (false, MeshCkyStats::default());
    }
    let n = tokens.len();
    let mut stats = MeshCkyStats {
        cells: n * (n + 1) / 2,
        sweeps: 0,
        max_cell_work: 0,
    };
    // chart[len-1][i], all zero except the lexical row.
    let mut chart: Vec<Vec<u64>> = (0..n).map(|len| vec![0u64; n - len]).collect();
    for (i, &t) in tokens.iter().enumerate() {
        chart[0][i] = grammar.lexical_mask(t);
    }
    loop {
        stats.sweeps += 1;
        let mut changed = false;
        // Synchronous: all cells read the previous sweep's chart.
        let snapshot = chart.clone();
        for len in 2..=n {
            for i in 0..=n - len {
                let mut mask = snapshot[len - 1][i];
                let mut work = 0;
                for split in 1..len {
                    let left = snapshot[split - 1][i];
                    let right = snapshot[len - split - 1][i + split];
                    work += grammar.binary_rules().len();
                    if left == 0 || right == 0 {
                        continue;
                    }
                    for (a_bit, b, c) in grammar.rules_for_cky() {
                        if left >> b.0 & 1 == 1 && right >> c.0 & 1 == 1 {
                            mask |= a_bit;
                        }
                    }
                }
                stats.max_cell_work = stats.max_cell_work.max(work);
                if mask != chart[len - 1][i] {
                    chart[len - 1][i] = mask;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let accepted = chart[n - 1][0] >> grammar.start().0 & 1 == 1;
    (accepted, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cky::cky_recognize;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_sequential() {
        let g = gen::english_cfg();
        for s in [
            "the dog sees a cat",
            "a cat sleeps",
            "dog the sees",
            "the dog sees the cat in the park",
        ] {
            let toks = g.tokenize(s).unwrap();
            let (seq, _) = cky_recognize(&g, &toks);
            let (mesh, _) = mesh_recognize(&g, &toks);
            assert_eq!(seq, mesh, "`{s}`");
        }
    }

    #[test]
    fn matches_sequential_on_random_inputs() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..20 {
            let g = gen::random_cnf(&mut rng, 5, 8, 3);
            let len = rng.gen_range(1..=8);
            let tokens: Vec<usize> = (0..len)
                .map(|_| rng.gen_range(0..g.num_terminals()))
                .collect();
            assert_eq!(cky_recognize(&g, &tokens).0, mesh_recognize(&g, &tokens).0);
        }
    }

    #[test]
    fn sweeps_grow_linearly() {
        // The fixpoint needs Θ(n) sweeps: doubling n should roughly double
        // the sweep count (within rounding), never square it.
        let g = gen::anbn_cfg();
        let sweeps = |n: usize| {
            let s = format!("{}{}", "a ".repeat(n), "b ".repeat(n));
            let toks = g.tokenize(&s).unwrap();
            mesh_recognize(&g, &toks).1.sweeps as f64
        };
        let ratio = sweeps(12) / sweeps(6);
        assert!(
            (1.5..3.0).contains(&ratio),
            "sweeps should be Θ(n): {ratio}"
        );
    }

    #[test]
    fn cell_count_is_quadratic() {
        let g = gen::anbn_cfg();
        let toks = g.tokenize("a a b b").unwrap();
        let (_, stats) = mesh_recognize(&g, &toks);
        assert_eq!(stats.cells, 10); // 4·5/2
        assert!(stats.max_cell_work > 0);
    }

    #[test]
    fn empty_input() {
        let g = gen::anbn_cfg();
        assert!(!mesh_recognize(&g, &[]).0);
    }
}
