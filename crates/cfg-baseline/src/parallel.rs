//! Wavefront-parallel CKY on rayon.
//!
//! CKY's data dependencies run strictly from shorter spans to longer ones,
//! so each anti-diagonal of the chart (all cells of one span length) is an
//! independent parallel sweep — the practical host-machine analogue of the
//! P-RAM CFG rows in Figure 8. Results are bit-identical to the sequential
//! recognizer.

use crate::grammar::CnfGrammar;
use rayon::prelude::*;

/// Parallel recognizer. Returns the same decision as
/// [`crate::cky_recognize`]; also reports the number of parallel sweeps
/// (one per span length — the O(n) critical path of this schedule).
pub fn cky_recognize_par(grammar: &CnfGrammar, tokens: &[usize]) -> (bool, usize) {
    if tokens.is_empty() {
        return (false, 0);
    }
    let n = tokens.len();
    let mut chart: Vec<Vec<u64>> = Vec::with_capacity(n);
    chart.push(tokens.iter().map(|&t| grammar.lexical_mask(t)).collect());
    let mut sweeps = 1;
    for len in 2..=n {
        sweeps += 1;
        let row: Vec<u64> = (0..n - len + 1)
            .into_par_iter()
            .map(|i| {
                let mut mask = 0u64;
                for split in 1..len {
                    let left = chart[split - 1][i];
                    let right = chart[len - split - 1][i + split];
                    if left == 0 || right == 0 {
                        continue;
                    }
                    for (a_bit, b, c) in grammar.rules_for_cky() {
                        if left >> b.0 & 1 == 1 && right >> c.0 & 1 == 1 {
                            mask |= a_bit;
                        }
                    }
                }
                mask
            })
            .collect();
        chart.push(row);
    }
    let accepted = chart[n - 1][0] >> grammar.start().0 & 1 == 1;
    (accepted, sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cky::cky_recognize;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_sequential_on_fixed_cases() {
        let g = gen::anbn_cfg();
        for s in ["a b", "a a b b", "a b b", "b", "a a a a b b b b"] {
            let toks = g.tokenize(s).unwrap();
            let (seq, _) = cky_recognize(&g, &toks);
            let (par, sweeps) = cky_recognize_par(&g, &toks);
            assert_eq!(seq, par, "`{s}`");
            assert_eq!(sweeps, toks.len());
        }
    }

    #[test]
    fn matches_sequential_on_random_grammars_and_strings() {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        for trial in 0..30 {
            let g = gen::random_cnf(&mut rng, 6, 10, 3);
            let len = rng.gen_range(1..=10);
            let tokens: Vec<usize> = (0..len)
                .map(|_| rng.gen_range(0..g.num_terminals()))
                .collect();
            let (seq, _) = cky_recognize(&g, &tokens);
            let (par, _) = cky_recognize_par(&g, &tokens);
            assert_eq!(seq, par, "trial {trial}");
        }
    }

    #[test]
    fn empty_input() {
        let g = gen::anbn_cfg();
        assert_eq!(cky_recognize_par(&g, &[]), (false, 0));
    }
}
