//! Context-free parsing baselines for the paper's Figure 8.
//!
//! The paper's evaluation table compares CDG parsing against CFG parsing
//! across architectures (sequential, CRCW P-RAM, 2-D mesh, cellular
//! automata, tree/hypercube). This crate supplies the CFG side:
//!
//! * [`grammar::CnfGrammar`] — Chomsky-normal-form grammars with at most
//!   64 nonterminals, so chart cells are single `u64` masks;
//! * [`cky`] — the O(|R|·n³) sequential CKY recognizer/parser (the
//!   "Sequential Machine" CFG row);
//! * [`parallel`] — a rayon wavefront CKY (diagonals in parallel — the
//!   practical stand-in for the P-RAM CFG rows);
//! * [`mesh`] — a synchronous-sweep systolic CKY in the spirit of
//!   Kosaraju's array automata (the "2D Mesh / Cellular Automata" rows):
//!   every cell recomputes from the current chart each sweep, and the
//!   number of sweeps to fixpoint is the measured mesh time, O(n);
//! * [`gen`] — seeded random CNF grammars and sentence samplers, plus
//!   fixed grammars (a toy English CFG, aⁿbⁿ, balanced brackets) shared
//!   with the CDG cross-validation tests.

pub mod cky;
pub mod gen;
pub mod grammar;
pub mod mesh;
pub mod parallel;

pub use cky::{cky_parse, cky_recognize, CkyStats, ParseTree};
pub use grammar::{CnfGrammar, Nt};
pub use mesh::{mesh_recognize, MeshCkyStats};
pub use parallel::cky_recognize_par;
