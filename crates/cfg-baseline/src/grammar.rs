//! Chomsky-normal-form grammars.

use std::collections::BTreeMap;
use std::fmt;

/// A nonterminal, indexed into the grammar's symbol table. At most 64
/// nonterminals are allowed so a chart cell fits one `u64` mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Nt(pub u8);

/// A CNF grammar: rules are `A → B C` or `A → t`.
#[derive(Debug, Clone)]
pub struct CnfGrammar {
    name: String,
    nonterminals: Vec<String>,
    terminals: Vec<String>,
    start: Nt,
    /// Binary rules (A, B, C) for A → B C.
    binary: Vec<(Nt, Nt, Nt)>,
    /// Unit (lexical) rules: terminal index → mask of A with A → t.
    lexical: Vec<u64>,
}

/// Errors raised while building a grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    TooManyNonterminals(usize),
    UnknownSymbol(String),
    NoRules,
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::TooManyNonterminals(n) => {
                write!(f, "{n} nonterminals exceed the 64 supported")
            }
            CfgError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
            CfgError::NoRules => write!(f, "grammar has no rules"),
        }
    }
}

impl std::error::Error for CfgError {}

/// Builder for [`CnfGrammar`].
#[derive(Debug, Default)]
pub struct CnfBuilder {
    name: String,
    nonterminals: Vec<String>,
    terminals: Vec<String>,
    binary: Vec<(String, String, String)>,
    lexical: Vec<(String, String)>,
    start: Option<String>,
}

impl CnfBuilder {
    pub fn new(name: &str) -> Self {
        CnfBuilder {
            name: name.to_string(),
            ..Default::default()
        }
    }

    fn nt_index(&mut self, name: &str) -> usize {
        if let Some(i) = self.nonterminals.iter().position(|s| s == name) {
            i
        } else {
            self.nonterminals.push(name.to_string());
            self.nonterminals.len() - 1
        }
    }

    fn t_index(&mut self, name: &str) -> usize {
        if let Some(i) = self.terminals.iter().position(|s| s == name) {
            i
        } else {
            self.terminals.push(name.to_string());
            self.terminals.len() - 1
        }
    }

    /// The start symbol (defaults to the first nonterminal mentioned).
    pub fn start(&mut self, s: &str) -> &mut Self {
        self.nt_index(s);
        self.start = Some(s.to_string());
        self
    }

    /// Add `a → b c`.
    pub fn rule(&mut self, a: &str, b: &str, c: &str) -> &mut Self {
        self.nt_index(a);
        self.nt_index(b);
        self.nt_index(c);
        self.binary.push((a.into(), b.into(), c.into()));
        self
    }

    /// Add `a → t` (lexical).
    pub fn lex(&mut self, a: &str, t: &str) -> &mut Self {
        self.nt_index(a);
        self.t_index(t);
        self.lexical.push((a.into(), t.into()));
        self
    }

    pub fn build(&self) -> Result<CnfGrammar, CfgError> {
        if self.binary.is_empty() && self.lexical.is_empty() {
            return Err(CfgError::NoRules);
        }
        if self.nonterminals.len() > 64 {
            return Err(CfgError::TooManyNonterminals(self.nonterminals.len()));
        }
        let nt = |name: &str| -> Result<Nt, CfgError> {
            self.nonterminals
                .iter()
                .position(|s| s == name)
                .map(|i| Nt(i as u8))
                .ok_or_else(|| CfgError::UnknownSymbol(name.to_string()))
        };
        let start = match &self.start {
            Some(s) => nt(s)?,
            None => Nt(0),
        };
        let binary = self
            .binary
            .iter()
            .map(|(a, b, c)| Ok((nt(a)?, nt(b)?, nt(c)?)))
            .collect::<Result<Vec<_>, CfgError>>()?;
        let mut lexical = vec![0u64; self.terminals.len()];
        for (a, t) in &self.lexical {
            let a = nt(a)?;
            let ti = self
                .terminals
                .iter()
                .position(|s| s == t)
                .expect("terminal interned in lex()");
            lexical[ti] |= 1u64 << a.0;
        }
        Ok(CnfGrammar {
            name: self.name.clone(),
            nonterminals: self.nonterminals.clone(),
            terminals: self.terminals.clone(),
            start,
            binary,
            lexical,
        })
    }
}

impl CnfGrammar {
    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn start(&self) -> Nt {
        self.start
    }

    pub fn num_nonterminals(&self) -> usize {
        self.nonterminals.len()
    }

    pub fn num_terminals(&self) -> usize {
        self.terminals.len()
    }

    pub fn num_rules(&self) -> usize {
        self.binary.len()
            + self
                .lexical
                .iter()
                .map(|m| m.count_ones() as usize)
                .sum::<usize>()
    }

    pub fn binary_rules(&self) -> &[(Nt, Nt, Nt)] {
        &self.binary
    }

    pub fn nt_name(&self, nt: Nt) -> &str {
        &self.nonterminals[nt.0 as usize]
    }

    pub fn terminal_index(&self, t: &str) -> Option<usize> {
        self.terminals.iter().position(|s| s == t)
    }

    pub fn terminal_name(&self, i: usize) -> &str {
        &self.terminals[i]
    }

    /// Mask of nonterminals deriving terminal index `ti` directly.
    pub fn lexical_mask(&self, ti: usize) -> u64 {
        self.lexical[ti]
    }

    /// Tokenize a whitespace string into terminal indices.
    pub fn tokenize(&self, text: &str) -> Result<Vec<usize>, CfgError> {
        text.split_whitespace()
            .map(|t| {
                self.terminal_index(t)
                    .ok_or_else(|| CfgError::UnknownSymbol(t.to_string()))
            })
            .collect()
    }

    /// Binary rules grouped for the CKY inner loop: (A mask bit, B, C).
    pub fn rules_for_cky(&self) -> impl Iterator<Item = (u64, Nt, Nt)> + '_ {
        self.binary.iter().map(|&(a, b, c)| (1u64 << a.0, b, c))
    }

    /// All (surface) productions of each nonterminal, for the sampler:
    /// map A → list of either Terminal(usize) or Pair(B, C).
    pub fn expansions(&self) -> BTreeMap<Nt, Vec<Expansion>> {
        let mut map: BTreeMap<Nt, Vec<Expansion>> = BTreeMap::new();
        for &(a, b, c) in &self.binary {
            map.entry(a).or_default().push(Expansion::Pair(b, c));
        }
        for (ti, &mask) in self.lexical.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let a = Nt(m.trailing_zeros() as u8);
                m &= m - 1;
                map.entry(a).or_default().push(Expansion::Terminal(ti));
            }
        }
        map
    }
}

/// One right-hand side of a CNF rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expansion {
    Terminal(usize),
    Pair(Nt, Nt),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anbn() -> CnfGrammar {
        // S → A B | A T;  T → S B;  A → a;  B → b.
        let mut b = CnfBuilder::new("anbn");
        b.start("S")
            .rule("S", "A", "B")
            .rule("S", "A", "T")
            .rule("T", "S", "B")
            .lex("A", "a")
            .lex("B", "b");
        b.build().unwrap()
    }

    #[test]
    fn builder_interned_symbols() {
        let g = anbn();
        assert_eq!(g.num_nonterminals(), 4);
        assert_eq!(g.num_terminals(), 2);
        assert_eq!(g.nt_name(g.start()), "S");
        assert_eq!(g.num_rules(), 5);
        assert_eq!(g.terminal_index("a"), Some(0));
        assert_eq!(g.terminal_index("z"), None);
    }

    #[test]
    fn lexical_masks() {
        let g = anbn();
        let a_mask = g.lexical_mask(g.terminal_index("a").unwrap());
        assert_eq!(a_mask.count_ones(), 1);
        let b_mask = g.lexical_mask(g.terminal_index("b").unwrap());
        assert_ne!(a_mask, b_mask);
    }

    #[test]
    fn tokenize_roundtrip() {
        let g = anbn();
        let toks = g.tokenize("a a b b").unwrap();
        assert_eq!(toks.len(), 4);
        assert_eq!(g.terminal_name(toks[0]), "a");
        assert!(g.tokenize("a x").is_err());
    }

    #[test]
    fn empty_grammar_rejected() {
        assert_eq!(CnfBuilder::new("x").build().unwrap_err(), CfgError::NoRules);
    }

    #[test]
    fn too_many_nonterminals_rejected() {
        let mut b = CnfBuilder::new("big");
        for i in 0..65 {
            b.lex(&format!("N{i}"), "t");
        }
        assert!(matches!(
            b.build().unwrap_err(),
            CfgError::TooManyNonterminals(65)
        ));
    }

    #[test]
    fn expansions_cover_all_rules() {
        let g = anbn();
        let ex = g.expansions();
        let s_rules = &ex[&g.start()];
        assert_eq!(s_rules.len(), 2);
        assert!(s_rules.iter().all(|e| matches!(e, Expansion::Pair(_, _))));
        let a = Nt(1); // "A" interned second (after S)
        assert!(matches!(ex[&a][0], Expansion::Terminal(_)));
    }
}
