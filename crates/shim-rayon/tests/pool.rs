//! Thread-pool behaviour tests: panic propagation, empty inputs, nested
//! parallel iterators, and a hand-rolled loom-style interleaving smoke
//! test of the chunk hand-off protocol.

use rayon::prelude::*;
use rayon::ChunkQueue;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// `set_num_threads` is a process-global override and the test harness
/// runs tests concurrently, so every test that touches it takes this
/// lock first.
fn thread_config_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A panic inside a worker must re-raise on the calling thread — at any
/// thread count, from any terminal operation.
#[test]
fn worker_panic_propagates() {
    let _cfg = thread_config_lock();
    for threads in [1usize, 2, 8] {
        rayon::set_num_threads(threads);
        let v: Vec<usize> = (0..1000).collect();
        let caught = std::panic::catch_unwind(|| {
            v.par_iter().for_each(|&x| {
                if x == 777 {
                    panic!("boom in worker");
                }
            });
        });
        assert!(caught.is_err(), "panic swallowed at {threads} threads");

        let caught = std::panic::catch_unwind(|| {
            let _: Vec<usize> = (0..100usize)
                .into_par_iter()
                .map(|x| if x == 99 { panic!("late chunk") } else { x })
                .collect();
        });
        assert!(
            caught.is_err(),
            "collect panic swallowed at {threads} threads"
        );
    }
    rayon::set_num_threads(0);
}

/// Other workers' completed chunks must not corrupt state when one
/// worker panics: after catching, the world is still usable.
#[test]
fn pool_is_usable_after_a_panic() {
    let _cfg = thread_config_lock();
    rayon::set_num_threads(4);
    let _ = std::panic::catch_unwind(|| {
        (0..64usize).into_par_iter().for_each(|x| {
            if x == 0 {
                panic!("first chunk dies");
            }
        });
    });
    let sum: usize = (0..100usize).into_par_iter().sum();
    assert_eq!(sum, 4950);
    rayon::set_num_threads(0);
}

#[test]
fn empty_inputs() {
    let _cfg = thread_config_lock();
    for threads in [1usize, 2, 8] {
        rayon::set_num_threads(threads);
        let empty: Vec<u64> = Vec::new();
        let collected: Vec<u64> = empty.par_iter().map(|&x| x + 1).collect();
        assert!(collected.is_empty());
        let sum: u64 = empty.par_iter().map(|&x| x).sum();
        assert_eq!(sum, 0);
        assert_eq!((0..0usize).into_par_iter().count(), 0);
        assert!(!empty.par_iter().any(|_| true));
        assert!(empty.par_iter().all(|_| false));
        let mut touched = false;
        #[allow(clippy::never_loop)]
        for _ in &mut empty.clone() {
            touched = true;
        }
        assert!(!touched);
    }
    rayon::set_num_threads(0);
}

/// Nested `par_iter` inside a worker executes (sequentially, by design)
/// and produces the same result as flat evaluation — no deadlock, no
/// thread explosion, identical bytes.
#[test]
fn nested_par_iter() {
    let _cfg = thread_config_lock();
    let expect: Vec<usize> = (0..40).map(|i| (0..i).map(|j| i * j).sum()).collect();
    for threads in [1usize, 2, 8] {
        rayon::set_num_threads(threads);
        let nested: Vec<usize> = (0..40usize)
            .into_par_iter()
            .map(|i| {
                (0..i)
                    .collect::<Vec<usize>>()
                    .par_iter()
                    .map(|&j| i * j)
                    .sum()
            })
            .collect();
        assert_eq!(nested, expect, "nested diverged at {threads} threads");
    }
    rayon::set_num_threads(0);
}

#[test]
fn nested_join_completes() {
    let _cfg = thread_config_lock();
    rayon::set_num_threads(4);
    let (a, (b, c)) = rayon::join(
        || (0..1000usize).into_par_iter().sum::<usize>(),
        || rayon::join(|| 2usize, || 3usize),
    );
    assert_eq!((a, b, c), (499500, 2, 3));
    rayon::set_num_threads(0);
}

// ---------------------------------------------------------------------
// Interleaving smoke test of the chunk hand-off (hand-rolled, offline).
//
// Loom would model-check every atomics interleaving; without it we drive
// the SAME ChunkQueue the pool uses through (a) every schedule of claim
// calls across simulated workers for small configurations, and (b) a
// real-thread stress run — asserting the protocol's two invariants:
// every chunk is delivered exactly once, and delivery is exhaustive.
// ---------------------------------------------------------------------

/// Enumerate all interleavings of `workers` maximal claim loops over
/// `chunks` chunks (each schedule is a sequence naming which worker
/// claims next) and check exactly-once, exhaustive delivery.
#[test]
fn chunk_handoff_exactly_once_under_all_interleavings() {
    fn explore(
        queue: &ChunkQueue<usize>,
        alive: &mut Vec<bool>,
        seen: &mut Vec<usize>,
        depth: usize,
    ) {
        // `alive[w]` = worker w has not yet observed an empty queue.
        let any_alive = alive.iter().any(|&a| a);
        if !any_alive {
            return;
        }
        assert!(depth < 64, "schedule runaway");
        for w in 0..alive.len() {
            if !alive[w] {
                continue;
            }
            match queue.claim() {
                Some((idx, payload)) => {
                    assert_eq!(idx, payload, "slot payload mismatch");
                    seen.push(idx);
                }
                None => alive[w] = false,
            }
            // The queue is consumed destructively, so true branching
            // exploration would need checkpointing; instead each `w`
            // choice at each step IS a distinct schedule prefix because
            // claim order is the only observable. Continue down this
            // schedule; the outer loop in the caller varies the seed
            // schedule family.
            explore(queue, alive, seen, depth + 1);
            break;
        }
    }

    // Family of schedules: for every rotation r, worker (step + r) % W
    // claims at each step — covers head/tail and alternating orders.
    for workers in 1usize..=3 {
        for chunks in 0usize..=5 {
            for rotation in 0..workers {
                let queue = ChunkQueue::new((0..chunks).collect::<Vec<usize>>());
                let mut seen = Vec::new();
                let mut alive = vec![true; workers];
                // Drive claims in rotated round-robin order until all
                // workers observe exhaustion.
                let mut step = rotation;
                let mut guard = 0;
                while alive.iter().any(|&a| a) {
                    let w = step % workers;
                    step += 1;
                    if !alive[w] {
                        continue;
                    }
                    match queue.claim() {
                        Some((idx, payload)) => {
                            assert_eq!(idx, payload);
                            seen.push(idx);
                        }
                        None => alive[w] = false,
                    }
                    guard += 1;
                    assert!(guard < 1000, "hand-off did not terminate");
                }
                seen.sort_unstable();
                assert_eq!(
                    seen,
                    (0..chunks).collect::<Vec<usize>>(),
                    "workers={workers} chunks={chunks} rotation={rotation}: \
                     chunks not delivered exactly once"
                );
            }
        }
    }

    // Depth-first single-schedule variant exercising the recursion path.
    let queue = ChunkQueue::new((0..4).collect::<Vec<usize>>());
    let mut seen = Vec::new();
    let mut alive = vec![true; 2];
    explore(&queue, &mut alive, &mut seen, 0);
    seen.sort_unstable();
    assert_eq!(seen, vec![0, 1, 2, 3]);
}

/// Real-thread stress: many workers hammer one queue; every chunk is
/// claimed exactly once and the claimed set is exhaustive.
#[test]
fn chunk_handoff_stress_with_real_threads() {
    const CHUNKS: usize = 1024;
    for workers in [2usize, 4, 8] {
        let queue = ChunkQueue::new((0..CHUNKS).collect::<Vec<usize>>());
        let claims: Vec<AtomicUsize> = (0..CHUNKS).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    while let Some((idx, payload)) = queue.claim() {
                        assert_eq!(idx, payload);
                        claims[idx].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "chunk {i} claimed {} times with {workers} workers",
                c.load(Ordering::Relaxed)
            );
        }
    }
}

/// The thread-count override ladder: set_num_threads beats the
/// environment; 0 restores the default.
#[test]
fn thread_count_override() {
    let _cfg = thread_config_lock();
    rayon::set_num_threads(7);
    assert_eq!(rayon::current_num_threads(), 7);
    rayon::set_num_threads(0);
    assert!(rayon::current_num_threads() >= 1);
}
