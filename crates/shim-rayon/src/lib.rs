//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API surface* it actually uses. Every
//! `par_iter`-style method here returns the corresponding **sequential**
//! standard-library iterator; all the adapters the codebase chains on top
//! (`map`, `zip`, `enumerate`, `for_each`, `sum`, `collect`, …) then come
//! from `std::iter::Iterator` for free.
//!
//! This preserves the workspace's determinism guarantees (see
//! `maspar-sim/src/lib.rs`: results never depend on rayon's scheduling) and
//! keeps every call site source-compatible with the real crate, so swapping
//! the genuine rayon back in is a one-line `Cargo.toml` change.

pub mod prelude {
    /// `into_par_iter()` for owned collections and ranges: sequential here.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` over slices and vectors.
    pub trait IntoParallelRefIterator {
        type Item;
        fn par_iter(&self) -> std::slice::Iter<'_, Self::Item>;
    }
    impl<T> IntoParallelRefIterator for [T] {
        type Item = T;
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }
    impl<T> IntoParallelRefIterator for Vec<T> {
        type Item = T;
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    /// `par_iter_mut()` over slices and vectors.
    pub trait IntoParallelRefMutIterator {
        type Item;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, Self::Item>;
    }
    impl<T> IntoParallelRefMutIterator for [T] {
        type Item = T;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }
    impl<T> IntoParallelRefMutIterator for Vec<T> {
        type Item = T;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    /// Rayon-only adapters that have no `std::iter` namesake.
    pub trait ParallelIterator: Iterator + Sized {
        /// Rayon's cheap flat-map over serial inner iterators; plain
        /// `flat_map` sequentially.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }
    }
    impl<I: Iterator> ParallelIterator for I {}
}

/// Sequential `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Mirrors `rayon::current_num_threads` for diagnostics: always 1 here.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_surface_behaves_like_serial() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut w = vec![0usize; 4];
        w.par_iter_mut().enumerate().for_each(|(i, slot)| *slot = i);
        assert_eq!(w, vec![0, 1, 2, 3]);

        let total: usize = (0..10usize).into_par_iter().map(|x| x * x).sum();
        assert_eq!(total, 285);

        let flat: Vec<usize> = (0..3usize)
            .into_par_iter()
            .flat_map_iter(|i| vec![i, i * 10])
            .collect();
        assert_eq!(flat, vec![0, 0, 1, 10, 2, 20]);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }
}
