//! Offline stand-in for [rayon](https://crates.io/crates/rayon) — now with
//! **real multi-core execution**.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the *API surface* it actually uses. Earlier
//! revisions of this shim returned sequential standard-library iterators;
//! this revision executes `par_iter`-family pipelines on a chunked
//! `std::thread` crew (see [`pool`]) while keeping every call site
//! source-compatible with the real crate, so swapping genuine rayon back
//! in remains a one-line `Cargo.toml` change.
//!
//! Two properties the workspace depends on:
//!
//! * **Determinism.** Chunk boundaries are a pure function of the input
//!   length, per-chunk results are combined in chunk order, and mutable
//!   items are partitioned disjointly across workers — so every pipeline
//!   produces byte-identical results at any thread count (including 1),
//!   matching the guarantee documented in `maspar-sim` and relied on by
//!   the engine-equivalence suites.
//! * **Panic propagation.** A panic inside a worker is re-raised on the
//!   calling thread by `std::thread::scope`, like rayon.
//!
//! Thread count: `RAYON_NUM_THREADS` (read once), overridable at runtime
//! with [`set_num_threads`] (the CLI's `--threads` flag and the
//! determinism tests use this); default `available_parallelism()`.
//! Nested parallel operations inside a worker run sequentially rather
//! than spawning threads under threads.

pub mod iter;
pub mod pool;

pub use pool::{current_num_threads, join, set_num_threads, ChunkQueue};

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Run `f` once per thread count and assert all results are equal;
    /// returns the common value. The workhorse of the determinism tests.
    fn across_threads<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) -> R {
        let mut results = Vec::new();
        for threads in [1usize, 2, 3, 8] {
            super::set_num_threads(threads);
            results.push((threads, f()));
        }
        super::set_num_threads(0);
        let (_, first) = results.remove(0);
        for (threads, r) in results {
            assert_eq!(first, r, "diverged at {threads} threads");
        }
        first
    }

    #[test]
    fn par_iter_surface_behaves_like_serial() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let mut w = vec![0usize; 4];
        w.par_iter_mut().enumerate().for_each(|(i, slot)| *slot = i);
        assert_eq!(w, vec![0, 1, 2, 3]);

        let total: usize = (0..10usize).into_par_iter().map(|x| x * x).sum();
        assert_eq!(total, 285);

        let flat: Vec<usize> = (0..3usize)
            .into_par_iter()
            .flat_map_iter(|i| vec![i, i * 10])
            .collect();
        assert_eq!(flat, vec![0, 0, 1, 10, 2, 20]);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }

    #[test]
    fn results_are_identical_at_every_thread_count() {
        let big: Vec<u64> = (0..10_000u64).collect();
        across_threads(|| {
            let collected: Vec<u64> = big.par_iter().map(|&x| x.wrapping_mul(31)).collect();
            let sum: u64 = big.par_iter().map(|&x| x * x).sum();
            let flat: Vec<u64> = (0..997usize)
                .into_par_iter()
                .flat_map_iter(|i| (0..(i % 5) as u64).map(move |j| i as u64 * 10 + j))
                .collect();
            (collected, sum, flat)
        });
    }

    #[test]
    fn float_reduction_order_is_fixed() {
        // f64 addition is not associative; byte-identical sums across
        // thread counts prove the reduction tree never moves.
        let xs: Vec<f64> = (1..=4096).map(|i| 1.0 / i as f64).collect();
        let sums = across_threads(|| {
            let s: f64 = xs.par_iter().map(|&x| x).sum();
            s.to_bits()
        });
        assert!(f64::from_bits(sums) > 8.0);
    }

    #[test]
    fn zip_of_mut_and_shared_slices() {
        let src: Vec<usize> = (0..1000).collect();
        let result = across_threads(|| {
            let mut dst = vec![0usize; 1000];
            dst.par_iter_mut()
                .zip(src.par_iter())
                .for_each(|(d, &s)| *d = s * 3);
            dst
        });
        assert_eq!(result[999], 2997);
    }

    #[test]
    fn any_and_all() {
        let v: Vec<usize> = (0..5000).collect();
        super::set_num_threads(4);
        assert!(v.par_iter().any(|&x| x == 4999));
        assert!(!v.par_iter().any(|&x| x == 5000));
        assert!(v.par_iter().all(|&x| x < 5000));
        assert!(!v.par_iter().all(|&x| x < 4999));
        super::set_num_threads(0);
    }

    #[test]
    fn map_init_state_is_chunk_local() {
        // The per-chunk scratch must never leak across items' results:
        // output equals a stateless map whatever the chunking.
        let v: Vec<usize> = (0..503).collect();
        let out = across_threads(|| {
            v.par_iter()
                .map_init(Vec::<usize>::new, |scratch, &x| {
                    scratch.push(x);
                    x * 2 + (scratch.last().copied().unwrap() == x) as usize
                })
                .collect::<Vec<usize>>()
        });
        let expect: Vec<usize> = (0..503).map(|x| x * 2 + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn count_matches() {
        super::set_num_threads(3);
        assert_eq!((0..12345usize).into_par_iter().count(), 12345);
        super::set_num_threads(0);
    }
}
