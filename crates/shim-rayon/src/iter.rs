//! The parallel-iterator surface: splittable sources, composable
//! adapters, and chunk-driven terminal operations.
//!
//! Every parallel iterator is a *splittable producer*: it knows its base
//! length, can be cut in two at any base index, and can be consumed as an
//! ordinary sequential iterator. Terminal operations cut the producer
//! into [`crate::pool::chunk_count`] pieces (boundaries depend on the
//! length only), run each piece on the pool, and combine the per-chunk
//! results **in chunk order** — so `collect` preserves order exactly and
//! even non-commutative reductions are byte-identical at any thread
//! count.
//!
//! Adapters hold their closures behind `Arc` so splitting a producer
//! (which happens once per chunk, never per item) just bumps a reference
//! count; closures only need `Fn + Send + Sync`, exactly like rayon.

use crate::pool;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Split `p` into chunk-order pieces with boundaries `i * len / c` — a
/// pure function of `len`, never of the worker count.
fn split_pieces<P: ParallelIterator>(p: P) -> Vec<P> {
    let len = p.par_len();
    let c = pool::chunk_count(len);
    let mut out = Vec::with_capacity(c);
    let mut rest = p;
    let mut start = 0;
    for i in 1..c {
        let bound = i * len / c;
        let (head, tail) = rest.split_at(bound - start);
        out.push(head);
        rest = tail;
        start = bound;
    }
    out.push(rest);
    out
}

/// Run `work` over each piece of `p`, returning per-piece results in
/// piece order.
fn drive<P, R, F>(p: P, work: F) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    pool::run_chunks(split_pieces(p), |_idx, piece| work(piece))
}

/// A splittable, deterministic parallel iterator (the shim's analogue of
/// rayon's `IndexedParallelIterator`).
pub trait ParallelIterator: Sized + Send {
    type Item: Send;
    type SeqIter: Iterator<Item = Self::Item>;

    /// Base items this piece covers (adapters preserve the base index
    /// space; `flat_map_iter` output length may differ).
    fn par_len(&self) -> usize;

    /// Split into `[0, index)` and `[index, len)` pieces.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Consume this piece as a sequential iterator in base order.
    fn into_seq(self) -> Self::SeqIter;

    // ---------------- adapters ----------------

    fn map<R, F>(self, f: F) -> Map<Self, F, R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map {
            base: self,
            f: Arc::new(f),
            _r: PhantomData,
        }
    }

    /// Like rayon's `map_init`: `init` runs once per chunk, and `f`
    /// threads the chunk-local state through every item of that chunk —
    /// the hook for per-worker scratch (allocation pools, RNGs) that
    /// must not be shared across threads.
    fn map_init<T, R, INIT, F>(self, init: INIT, f: F) -> MapInit<Self, INIT, F, T, R>
    where
        R: Send,
        INIT: Fn() -> T + Send + Sync,
        F: Fn(&mut T, Self::Item) -> R + Send + Sync,
    {
        MapInit {
            base: self,
            init: Arc::new(init),
            f: Arc::new(f),
            _t: PhantomData,
        }
    }

    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Rayon's cheap flat-map whose inner iterators stay sequential;
    /// parallelism comes from the outer index space.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F, U>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        FlatMapIter {
            base: self,
            f: Arc::new(f),
            _u: PhantomData,
        }
    }

    // ---------------- terminal operations ----------------

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive(self, |piece| piece.into_seq().for_each(&f));
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        // Chunk partials are combined in chunk order, so the reduction
        // tree is fixed regardless of the thread count.
        drive(self, |piece| piece.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }

    fn count(self) -> usize {
        drive(self, |piece| piece.into_seq().count())
            .into_iter()
            .sum()
    }

    fn any<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Send + Sync,
    {
        let found = AtomicBool::new(false);
        drive(self, |piece| {
            // Cross-chunk early exit; OR is commutative so the answer is
            // unaffected by which chunk trips the flag first.
            if !found.load(Ordering::Relaxed) && piece.into_seq().any(&f) {
                found.store(true, Ordering::Relaxed);
            }
        });
        found.into_inner()
    }

    fn all<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Send + Sync,
    {
        !self.any(move |x| !f(x))
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// `collect()` target for parallel iterators.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        let parts = drive(p, |piece| piece.into_seq().collect::<Vec<_>>());
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for mut part in parts {
            out.append(&mut part);
        }
        out
    }
}

// ======================= sources =======================

/// Shared-slice source (`par_iter()`).
pub struct ParSlice<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (ParSlice { slice: a }, ParSlice { slice: b })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

/// Mutable-slice source (`par_iter_mut()`). Splitting hands disjoint
/// subslices to different workers — race-free by construction.
pub struct ParSliceMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for ParSliceMut<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (ParSliceMut { slice: a }, ParSliceMut { slice: b })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}

/// `(start..end).into_par_iter()` over `usize`.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParallelIterator for ParRange {
    type Item = usize;
    type SeqIter = std::ops::Range<usize>;

    fn par_len(&self) -> usize {
        self.range.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.range.start + index;
        (
            ParRange {
                range: self.range.start..mid,
            },
            ParRange {
                range: mid..self.range.end,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        self.range
    }
}

/// Owned-vector source (`vec.into_par_iter()`).
pub struct ParVec<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn par_len(&self) -> usize {
        self.items.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        (self, ParVec { items: tail })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.items.into_iter()
    }
}

// ======================= adapters =======================

pub struct Map<P, F, R> {
    base: P,
    f: Arc<F>,
    _r: PhantomData<fn() -> R>,
}

impl<P, F, R> ParallelIterator for Map<P, F, R>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Send + Sync,
{
    type Item = R;
    type SeqIter = MapSeq<P::SeqIter, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Map {
                base: a,
                f: Arc::clone(&self.f),
                _r: PhantomData,
            },
            Map {
                base: b,
                f: self.f,
                _r: PhantomData,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        MapSeq {
            inner: self.base.into_seq(),
            f: self.f,
        }
    }
}

pub struct MapSeq<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, F, R> Iterator for MapSeq<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.inner.next().map(|x| (self.f)(x))
    }
}

pub struct MapInit<P, INIT, F, T, R> {
    base: P,
    init: Arc<INIT>,
    f: Arc<F>,
    _t: PhantomData<fn() -> (T, R)>,
}

impl<P, INIT, F, T, R> ParallelIterator for MapInit<P, INIT, F, T, R>
where
    P: ParallelIterator,
    R: Send,
    INIT: Fn() -> T + Send + Sync,
    F: Fn(&mut T, P::Item) -> R + Send + Sync,
{
    type Item = R;
    type SeqIter = MapInitSeq<P::SeqIter, F, T>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            MapInit {
                base: a,
                init: Arc::clone(&self.init),
                f: Arc::clone(&self.f),
                _t: PhantomData,
            },
            MapInit {
                base: b,
                init: self.init,
                f: self.f,
                _t: PhantomData,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        MapInitSeq {
            state: (self.init)(),
            inner: self.base.into_seq(),
            f: self.f,
        }
    }
}

pub struct MapInitSeq<I, F, T> {
    inner: I,
    state: T,
    f: Arc<F>,
}

impl<I, F, T, R> Iterator for MapInitSeq<I, F, T>
where
    I: Iterator,
    F: Fn(&mut T, I::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.inner.next().map(|x| (self.f)(&mut self.state, x))
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;

    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type SeqIter = EnumerateSeq<P::SeqIter>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + index,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        EnumerateSeq {
            inner: self.base.into_seq(),
            next: self.offset,
        }
    }
}

/// `enumerate()` carrying the piece's base offset.
pub struct EnumerateSeq<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let x = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, x))
    }
}

pub struct FlatMapIter<P, F, U> {
    base: P,
    f: Arc<F>,
    _u: PhantomData<fn() -> U>,
}

impl<P, F, U> ParallelIterator for FlatMapIter<P, F, U>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Send + Sync,
{
    type Item = U::Item;
    type SeqIter = FlatMapSeq<P::SeqIter, F, U>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            FlatMapIter {
                base: a,
                f: Arc::clone(&self.f),
                _u: PhantomData,
            },
            FlatMapIter {
                base: b,
                f: self.f,
                _u: PhantomData,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        FlatMapSeq {
            inner: self.base.into_seq(),
            f: self.f,
            current: None,
        }
    }
}

pub struct FlatMapSeq<I, F, U: IntoIterator> {
    inner: I,
    f: Arc<F>,
    current: Option<U::IntoIter>,
}

impl<I, F, U> Iterator for FlatMapSeq<I, F, U>
where
    I: Iterator,
    U: IntoIterator,
    F: Fn(I::Item) -> U,
{
    type Item = U::Item;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(cur) = &mut self.current {
                if let Some(x) = cur.next() {
                    return Some(x);
                }
            }
            let base = self.inner.next()?;
            self.current = Some((self.f)(base).into_iter());
        }
    }
}

// ======================= entry points =======================

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// `par_iter()` over slices and vectors.
pub trait IntoParallelRefIterator {
    type Item: Sync;
    fn par_iter(&self) -> ParSlice<'_, Self::Item>;
}

impl<T: Sync> IntoParallelRefIterator for [T] {
    type Item = T;

    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }
}

impl<T: Sync> IntoParallelRefIterator for Vec<T> {
    type Item = T;

    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }
}

/// `par_iter_mut()` over slices and vectors.
pub trait IntoParallelRefMutIterator {
    type Item: Send;
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, Self::Item>;
}

impl<T: Send> IntoParallelRefMutIterator for [T] {
    type Item = T;

    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
        ParSliceMut { slice: self }
    }
}

impl<T: Send> IntoParallelRefMutIterator for Vec<T> {
    type Item = T;

    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
        ParSliceMut { slice: self }
    }
}
