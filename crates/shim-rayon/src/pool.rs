//! Thread configuration and the chunked work-distribution engine.
//!
//! Execution model: a terminal operation splits its iterator into chunks
//! whose boundaries depend **only on the input length** (never on the
//! thread count), pushes them onto a [`ChunkQueue`], and lets a scoped
//! crew of `std::thread` workers claim chunks one at a time (dynamic
//! hand-off — a cheap stand-in for work stealing that load-balances the
//! same way for flat sweeps). Per-chunk results land in index-ordered
//! slots and are combined sequentially in chunk order, so the reduction
//! order — and therefore every result, bit for bit — is identical at any
//! thread count. That is the workspace determinism contract.
//!
//! Thread count resolution: [`set_num_threads`] override (tests, the CLI
//! `--threads` flag) > the `RAYON_NUM_THREADS` environment variable (read
//! once) > `std::thread::available_parallelism()`.
//!
//! Nested parallel iterators inside a worker run sequentially (same chunk
//! order, so still deterministic) instead of spawning threads under
//! threads; `std::thread::scope` propagates worker panics to the caller.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Upper bound on chunks per terminal operation. A constant (not a
/// function of the thread count!) so chunk boundaries are reproducible
/// on any machine; large enough that claim-based hand-off balances load
/// across every plausible core count.
pub(crate) const MAX_CHUNKS: usize = 32;

/// Runtime override set by [`set_num_threads`]; 0 = no override.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Effective worker count for parallel execution. Mirrors
/// `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    let e = env_threads();
    if e > 0 {
        return e;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Override the worker count at runtime (0 restores the
/// `RAYON_NUM_THREADS` / `available_parallelism` default). The
/// determinism contract makes this safe to flip mid-program: results are
/// byte-identical at every thread count, only wall-clock changes.
pub fn set_num_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

thread_local! {
    /// Non-zero while the current thread is a pool worker; nested
    /// parallel operations then execute sequentially.
    static POOL_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Is the current thread already inside a parallel worker?
pub(crate) fn in_worker() -> bool {
    POOL_DEPTH.with(|d| d.get() > 0)
}

struct DepthGuard;

impl DepthGuard {
    fn enter() -> Self {
        POOL_DEPTH.with(|d| d.set(d.get() + 1));
        DepthGuard
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        POOL_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Number of chunks a `len`-item sweep splits into: a pure function of
/// `len` only — the anchor of the byte-identical-at-any-thread-count
/// guarantee.
pub(crate) fn chunk_count(len: usize) -> usize {
    len.clamp(1, MAX_CHUNKS)
}

/// The chunk hand-off structure: an atomic cursor over index-ordered
/// chunk slots. Workers claim the next unclaimed chunk; `fetch_add`
/// hands every index to exactly one claimant. Factored out (and `pub`)
/// so the interleaving tests can drive `claim` directly.
pub struct ChunkQueue<P> {
    slots: Vec<Mutex<Option<P>>>,
    next: AtomicUsize,
}

impl<P> ChunkQueue<P> {
    pub fn new(chunks: Vec<P>) -> Self {
        ChunkQueue {
            slots: chunks.into_iter().map(|c| Mutex::new(Some(c))).collect(),
            next: AtomicUsize::new(0),
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Claim the next chunk, or `None` when all are handed out. Each
    /// chunk index is returned to exactly one caller, in ascending order
    /// of claim time.
    pub fn claim(&self) -> Option<(usize, P)> {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.slots.len() {
                // Park the cursor so repeated polling cannot overflow.
                self.next.store(self.slots.len(), Ordering::Relaxed);
                return None;
            }
            let taken = self.slots[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take();
            // `fetch_add` makes a double-claim impossible in pool use;
            // the defensive skip keeps externally-driven queues safe.
            if let Some(p) = taken {
                return Some((i, p));
            }
        }
    }
}

/// Run `work` over every chunk and return the per-chunk results in chunk
/// order. Parallel when more than one worker is available and the caller
/// is not already a pool worker; the sequential path visits the *same*
/// chunks in the *same* order, so results are identical either way.
pub(crate) fn run_chunks<P, R, F>(chunks: Vec<P>, work: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(usize, P) -> R + Sync,
{
    let n = chunks.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 || in_worker() {
        return chunks
            .into_iter()
            .enumerate()
            .map(|(i, p)| work(i, p))
            .collect();
    }

    let queue = ChunkQueue::new(chunks);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let worker_loop = || {
        let _guard = DepthGuard::enter();
        while let Some((i, p)) = queue.claim() {
            let r = work(i, p);
            *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
        }
    };
    // The calling thread is crew member #0; a panic on any spawned
    // worker is re-raised by `scope` after all threads are joined.
    std::thread::scope(|s| {
        for _ in 1..workers {
            s.spawn(worker_loop);
        }
        worker_loop();
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every claimed chunk produced a result")
        })
        .collect()
}

/// Parallel `rayon::join`: runs `b` on a scoped thread while the calling
/// thread runs `a`; sequential when single-threaded or already inside a
/// worker. Panics from either closure propagate.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || in_worker() {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            let _guard = DepthGuard::enter();
            b()
        });
        let ra = a();
        let rb = hb
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        (ra, rb)
    })
}
