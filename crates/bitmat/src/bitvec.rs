//! Fixed-length packed bitset.

use crate::{tail_mask, words_for};

/// A fixed-length bitset packed into `u64` words.
///
/// Used for the per-role "alive" sets of the constraint network: bit `i` is
/// set while role value `i` is still a candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// All-zero bitset of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; words_for(len)],
        }
    }

    /// All-one bitset of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            len,
            words: vec![!0u64; words_for(len)],
        };
        v.clamp_tail();
        v
    }

    fn clamp_tail(&mut self) {
        if let Some(last) = self.words.last_mut() {
            *last &= tail_mask(self.len);
        }
    }

    /// Reset to an all-zero bitset of length `len`, reusing the existing
    /// word buffer (no allocation when capacity suffices). For scratch
    /// bitsets that are cleared and resized every round.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        let n = words_for(len);
        self.words.clear();
        self.words.resize(n, 0);
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if any bit is set.
    pub fn any(&self) -> bool {
        !self.none()
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// In-place intersection. Panics if lengths differ.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union. Panics if lengths differ.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// True if `self` and `other` share any set bit.
    pub fn intersects(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Raw words (read-only), little-endian bit order within each word.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// In-place union with a raw word slice of the same word length —
    /// the accumulator behind [`crate::BitMatrix::col_occupancy`]. The
    /// caller guarantees `words` has no bits set past `self.len` (true for
    /// any matrix row whose column count equals this vector's length).
    pub fn or_assign_raw(&mut self, words: &[u64]) {
        assert_eq!(self.words.len(), words.len(), "word length mismatch");
        for (a, b) in self.words.iter_mut().zip(words) {
            *a |= *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.count_ones(), 0);
        assert!(z.none());
        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.any());
        // Tail bits beyond len must not be set.
        assert_eq!(o.words()[1] >> 6, 0);
    }

    #[test]
    fn reset_reuses_buffer_and_matches_zeros() {
        let mut v = BitVec::ones(130);
        for len in [130, 7, 200, 0, 64] {
            v.reset(len);
            assert_eq!(v, BitVec::zeros(len));
            if len > 0 {
                // Dirty the buffer so the next round proves the clearing.
                v.set(len - 1, true);
            }
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut v = BitVec::zeros(200);
        let idx = [3usize, 64, 65, 140, 199];
        for &i in &idx {
            v.set(i, true);
        }
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), idx);
    }

    #[test]
    fn boolean_ops() {
        let mut a = BitVec::zeros(100);
        let mut b = BitVec::zeros(100);
        a.set(5, true);
        a.set(70, true);
        b.set(70, true);
        b.set(99, true);
        assert!(a.intersects(&b));
        let mut u = a.clone();
        u.or_assign(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![5, 70, 99]);
        a.and_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![70]);
        let c = BitVec::zeros(100);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn empty_bitvec() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert!(v.none());
        assert_eq!(v.iter_ones().count(), 0);
    }

    proptest! {
        #[test]
        fn count_matches_reference(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let mut v = BitVec::zeros(bits.len());
            for (i, &b) in bits.iter().enumerate() {
                v.set(i, b);
            }
            let expected = bits.iter().filter(|&&b| b).count();
            prop_assert_eq!(v.count_ones(), expected);
            let ones: Vec<usize> = bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
            prop_assert_eq!(v.iter_ones().collect::<Vec<_>>(), ones);
        }

        #[test]
        fn and_or_match_reference(
            a in proptest::collection::vec(any::<bool>(), 150),
            b in proptest::collection::vec(any::<bool>(), 150),
        ) {
            let mut va = BitVec::zeros(150);
            let mut vb = BitVec::zeros(150);
            for i in 0..150 {
                va.set(i, a[i]);
                vb.set(i, b[i]);
            }
            let mut and = va.clone();
            and.and_assign(&vb);
            let mut or = va.clone();
            or.or_assign(&vb);
            for i in 0..150 {
                prop_assert_eq!(and.get(i), a[i] && b[i]);
                prop_assert_eq!(or.get(i), a[i] || b[i]);
            }
            prop_assert_eq!(va.intersects(&vb), (0..150).any(|i| a[i] && b[i]));
        }
    }
}
