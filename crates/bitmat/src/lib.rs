//! Bitset and bit-matrix kernels.
//!
//! CDG parsing (Helzerman & Harper 1992, after Maruyama 1990) stores, for
//! every pair of roles in the constraint network, an *arc matrix* whose
//! `(i, j)` entry records whether role value `i` of one role may coexist with
//! role value `j` of the other. The parser's inner loops are dominated by
//! whole-row/column tests and zeroings of these matrices, so they are kept as
//! packed `u64` words and operated on a word at a time.
//!
//! [`BitVec`] is a fixed-length bitset; [`BitMatrix`] is a row-major packed
//! boolean matrix with the row/column primitives the parser needs:
//! `zero_row`, `zero_col`, `row_any`, `col_any`, `row_and_assign`, and
//! masked variants that restrict attention to the currently-alive values.

mod bitvec;
mod matrix;

pub use bitvec::BitVec;
pub use matrix::BitMatrix;

/// Number of `u64` words needed to hold `bits` bits.
#[inline]
pub(crate) fn words_for(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Mask selecting the valid bits of the final word of a `bits`-bit vector.
#[inline]
pub(crate) fn tail_mask(bits: usize) -> u64 {
    let rem = bits % 64;
    if rem == 0 {
        !0
    } else {
        (1u64 << rem) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn tail_mask_boundaries() {
        assert_eq!(tail_mask(64), !0);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(3), 0b111);
        assert_eq!(tail_mask(63), (1u64 << 63) - 1);
    }
}
