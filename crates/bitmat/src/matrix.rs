//! Row-major packed boolean matrix — the CDG arc matrix.

use crate::bitvec::BitVec;
use crate::{tail_mask, words_for};

/// A packed boolean matrix with `rows × cols` entries.
///
/// Rows are stored contiguously as `u64` words, so the hot operations of the
/// CDG parser — zeroing a row, testing whether a row is all zero, masking a
/// row by the alive set of the opposite role — are word-parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    row_words: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let row_words = words_for(cols);
        BitMatrix {
            rows,
            cols,
            row_words,
            words: vec![0; rows * row_words],
        }
    }

    /// All-zero matrix reusing `buf`'s allocation (see [`BitMatrix::into_words`]).
    /// The buffer is cleared and resized; its capacity is kept, so a
    /// `zeros_from`/`into_words` cycle allocates only when the matrix grows
    /// past every buffer it has recycled — the basis of the arc-matrix pool
    /// used by batched parsing.
    pub fn zeros_from(rows: usize, cols: usize, mut buf: Vec<u64>) -> Self {
        let row_words = words_for(cols);
        buf.clear();
        buf.resize(rows * row_words, 0);
        BitMatrix {
            rows,
            cols,
            row_words,
            words: buf,
        }
    }

    /// Surrender the backing word buffer for reuse via [`BitMatrix::zeros_from`].
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// All-one matrix (the initial state of every arc matrix: "nothing about
    /// one word's function prohibits another word's function").
    pub fn ones(rows: usize, cols: usize) -> Self {
        let row_words = words_for(cols);
        let mut m = BitMatrix {
            rows,
            cols,
            row_words,
            words: vec![!0u64; rows * row_words],
        };
        if row_words > 0 {
            let mask = tail_mask(cols);
            for r in 0..rows {
                m.words[r * row_words + row_words - 1] &= mask;
            }
        }
        m
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn check(&self, r: usize, c: usize) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of range for {}x{} matrix",
            self.rows,
            self.cols
        );
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.check(r, c);
        (self.words[r * self.row_words + c / 64] >> (c % 64)) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.check(r, c);
        let w = &mut self.words[r * self.row_words + c / 64];
        let mask = 1u64 << (c % 64);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Words of row `r` (read-only).
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.row_words..(r + 1) * self.row_words]
    }

    /// Words of row `r` (mutable).
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.words[r * self.row_words..(r + 1) * self.row_words]
    }

    /// Set every entry of row `r` to zero.
    pub fn zero_row(&mut self, r: usize) {
        self.row_mut(r).fill(0);
    }

    /// Set every entry of column `c` to zero.
    pub fn zero_col(&mut self, c: usize) {
        assert!(c < self.cols, "column {c} out of range");
        let word = c / 64;
        let mask = !(1u64 << (c % 64));
        for r in 0..self.rows {
            self.words[r * self.row_words + word] &= mask;
        }
    }

    /// True if row `r` contains at least one 1.
    pub fn row_any(&self, r: usize) -> bool {
        self.row(r).iter().any(|&w| w != 0)
    }

    /// True if column `c` contains at least one 1.
    pub fn col_any(&self, c: usize) -> bool {
        assert!(c < self.cols, "column {c} out of range");
        let word = c / 64;
        let mask = 1u64 << (c % 64);
        (0..self.rows).any(|r| self.words[r * self.row_words + word] & mask != 0)
    }

    /// True if row `r` has a 1 in any column whose bit is set in `alive`.
    ///
    /// This is the support test of consistency maintenance: a role value is
    /// supported by an arc if its row intersects the opposite role's alive
    /// set.
    pub fn row_any_masked(&self, r: usize, alive: &BitVec) -> bool {
        assert_eq!(alive.len(), self.cols, "alive mask length mismatch");
        self.row(r)
            .iter()
            .zip(alive.words())
            .any(|(&w, &m)| w & m != 0)
    }

    /// AND every word of row `r` with the mask `alive`.
    pub fn row_and_assign(&mut self, r: usize, alive: &BitVec) {
        assert_eq!(alive.len(), self.cols, "alive mask length mismatch");
        for (w, m) in self.row_mut(r).iter_mut().zip(alive.words()) {
            *w &= *m;
        }
    }

    /// AND row `r` with `mask`, returning how many 1-bits were cleared —
    /// the word-parallel arc-row kernel of binary constraint propagation:
    /// one memoized allowed-mask replaces a per-cell interpreter walk, and
    /// the cleared count feeds the `entries_zeroed` statistic exactly as
    /// per-cell zeroing would.
    pub fn row_and_count(&mut self, r: usize, mask: &BitVec) -> usize {
        assert_eq!(mask.len(), self.cols, "mask length mismatch");
        let mut cleared = 0usize;
        for (w, m) in self.row_mut(r).iter_mut().zip(mask.words()) {
            cleared += (*w & !*m).count_ones() as usize;
            *w &= *m;
        }
        cleared
    }

    /// OR of all rows: bit `c` is set iff column `c` contains at least
    /// one set entry. One pass over the words, so a full column-support
    /// sweep costs O(rows · row_words) instead of
    /// [`BitMatrix::col_any`]'s word-strided probe per column — the
    /// transpose-free column scan used by consistency maintenance.
    pub fn col_occupancy(&self) -> BitVec {
        let mut occ = BitVec::zeros(self.cols);
        for r in 0..self.rows {
            occ.or_assign_raw(self.row(r));
        }
        occ
    }

    /// Number of 1 entries in the whole matrix.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of 1 entries in row `r`.
    pub fn row_count_ones(&self, r: usize) -> usize {
        self.row(r).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over column indices of set bits in row `r`, ascending.
    pub fn row_ones(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(r).iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// In-place intersection with a same-shape matrix.
    pub fn and_assign(&mut self, other: &BitMatrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "matrix shape mismatch"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union with a same-shape matrix.
    pub fn or_assign(&mut self, other: &BitMatrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "matrix shape mismatch"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// True if the two matrices share any set bit.
    pub fn intersects(&self, other: &BitMatrix) -> bool {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "matrix shape mismatch"
        );
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Transpose of the matrix.
    pub fn transposed(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in self.row_ones(r) {
                t.set(c, r, true);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_ones_counts() {
        let z = BitMatrix::zeros(9, 9);
        assert_eq!(z.count_ones(), 0);
        let o = BitMatrix::ones(9, 9);
        assert_eq!(o.count_ones(), 81);
        // Every tail word is clamped per-row.
        let o2 = BitMatrix::ones(3, 70);
        assert_eq!(o2.count_ones(), 210);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMatrix::zeros(5, 130);
        m.set(2, 129, true);
        m.set(4, 0, true);
        assert!(m.get(2, 129));
        assert!(m.get(4, 0));
        assert!(!m.get(2, 0));
        m.set(2, 129, false);
        assert!(!m.get(2, 129));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_panics() {
        BitMatrix::zeros(3, 3).get(3, 0);
    }

    #[test]
    fn zero_row_and_col() {
        let mut m = BitMatrix::ones(4, 4);
        m.zero_row(1);
        assert!(!m.row_any(1));
        assert_eq!(m.count_ones(), 12);
        m.zero_col(2);
        assert!(!m.col_any(2));
        assert_eq!(m.count_ones(), 9);
        assert!(m.row_any(0));
        assert!(m.col_any(0));
    }

    #[test]
    fn masked_row_test() {
        let mut m = BitMatrix::zeros(2, 100);
        m.set(0, 50, true);
        let mut alive = BitVec::zeros(100);
        assert!(!m.row_any_masked(0, &alive));
        alive.set(50, true);
        assert!(m.row_any_masked(0, &alive));
        assert!(!m.row_any_masked(1, &alive));
    }

    #[test]
    fn row_and_assign_masks() {
        let mut m = BitMatrix::ones(1, 100);
        let mut alive = BitVec::zeros(100);
        alive.set(3, true);
        alive.set(99, true);
        m.row_and_assign(0, &alive);
        assert_eq!(m.row_ones(0).collect::<Vec<_>>(), vec![3, 99]);
    }

    #[test]
    fn row_and_count_reports_cleared_bits() {
        let mut m = BitMatrix::ones(2, 100);
        let mut mask = BitVec::zeros(100);
        mask.set(3, true);
        mask.set(99, true);
        assert_eq!(m.row_and_count(0, &mask), 98);
        assert_eq!(m.row_ones(0).collect::<Vec<_>>(), vec![3, 99]);
        // Re-applying the same mask clears nothing further.
        assert_eq!(m.row_and_count(0, &mask), 0);
        // A row that already lacks the masked-out bits loses none.
        m.zero_row(1);
        m.set(1, 3, true);
        assert_eq!(m.row_and_count(1, &mask), 0);
        assert!(m.get(1, 3));
    }

    #[test]
    fn col_occupancy_matches_col_any() {
        let mut m = BitMatrix::zeros(5, 130);
        for (r, c) in [(0, 0), (2, 64), (4, 129), (1, 64)] {
            m.set(r, c, true);
        }
        let occ = m.col_occupancy();
        for c in 0..130 {
            assert_eq!(occ.get(c), m.col_any(c), "column {c}");
        }
        assert_eq!(occ.count_ones(), 3);
    }

    #[test]
    fn row_ones_ascending() {
        let mut m = BitMatrix::zeros(1, 200);
        for c in [0, 63, 64, 127, 199] {
            m.set(0, c, true);
        }
        assert_eq!(m.row_ones(0).collect::<Vec<_>>(), vec![0, 63, 64, 127, 199]);
        assert_eq!(m.row_count_ones(0), 5);
    }

    #[test]
    fn transpose_involution() {
        let mut m = BitMatrix::zeros(3, 7);
        m.set(0, 6, true);
        m.set(2, 1, true);
        let t = m.transposed();
        assert!(t.get(6, 0));
        assert!(t.get(1, 2));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn matrix_boolean_ops() {
        let mut a = BitMatrix::zeros(3, 70);
        let mut b = BitMatrix::zeros(3, 70);
        a.set(0, 5, true);
        a.set(2, 69, true);
        b.set(2, 69, true);
        b.set(1, 0, true);
        assert!(a.intersects(&b));
        let mut u = a.clone();
        u.or_assign(&b);
        assert_eq!(u.count_ones(), 3);
        a.and_assign(&b);
        assert_eq!(a.count_ones(), 1);
        assert!(a.get(2, 69));
        let c = BitMatrix::zeros(3, 70);
        assert!(!a.intersects(&c));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn boolean_ops_check_shape() {
        let mut a = BitMatrix::zeros(2, 3);
        let b = BitMatrix::zeros(3, 2);
        a.and_assign(&b);
    }

    #[test]
    fn zero_sized_matrices() {
        let m = BitMatrix::zeros(0, 5);
        assert_eq!(m.count_ones(), 0);
        let m = BitMatrix::ones(5, 0);
        assert_eq!(m.count_ones(), 0);
        assert!(!m.row_any(0));
    }

    proptest! {
        #[test]
        fn matches_dense_reference(
            rows in 1usize..12,
            cols in 1usize..150,
            seed in any::<u64>(),
        ) {
            // Build a pseudo-random dense reference and mirror every op.
            let mut dense = vec![vec![false; cols]; rows];
            let mut m = BitMatrix::zeros(rows, cols);
            let mut state = seed | 1;
            for (r, row) in dense.iter_mut().enumerate() {
                for (c, cell) in row.iter_mut().enumerate() {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let v = state >> 63 == 1;
                    *cell = v;
                    m.set(r, c, v);
                }
            }
            for (r, row) in dense.iter().enumerate() {
                prop_assert_eq!(m.row_any(r), row.iter().any(|&b| b));
                prop_assert_eq!(m.row_count_ones(r), row.iter().filter(|&&b| b).count());
            }
            for c in 0..cols {
                prop_assert_eq!(m.col_any(c), dense.iter().any(|row| row[c]));
            }
            let occ = m.col_occupancy();
            for c in 0..cols {
                prop_assert_eq!(occ.get(c), dense.iter().any(|row| row[c]));
            }
            let t = m.transposed();
            for (r, row) in dense.iter().enumerate() {
                for (c, &cell) in row.iter().enumerate() {
                    prop_assert_eq!(t.get(c, r), cell);
                }
            }
        }
    }
}
